"""Write-Once B-tree node layout (paper section 2).

A WOBT node is an extent of consecutive sectors on the write-once device.
Its contents are kept strictly in **insertion order** — the same key may
occur several times, and the *last* occurrence is the most recent — because
burned sectors can never be rewritten or reordered.  Two physical write
patterns follow (section 2.1):

* when a node is created by a split, the entries copied into it are
  **consolidated**, several per sector, together with a small node header
  (leaf flag and the backward pointer of section 2.5);
* every later insertion burns **one whole sector for a single entry**, since
  the sector is the smallest writable unit and the previous sectors are
  already burned.

The same layout is used for data nodes (entries are record versions) and
index nodes (entries are ``(key, timestamp, child)`` triples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.storage.device import Address
from repro.storage.serialization import (
    ByteReader,
    ByteWriter,
    Key,
    SerializationError,
    key_size,
    read_key,
    read_timestamp,
    read_value,
    write_key,
    write_timestamp,
    write_value,
)

_ENTRY_TAG_RECORD = 1
_ENTRY_TAG_INDEX = 2
_ENTRY_TAG_INDEX_MIN = 3

#: serialized size of a node header (flags byte + backward pointer).
NODE_HEADER_SIZE = 10


class MinKeyType:
    """Singleton sentinel ordering below every real key.

    Section 2.4: the current root "will have one pointer stored with the
    lowest key value (minus infinity)".  The sentinel is what makes the
    leftmost reference chain route every key, including keys smaller than any
    key yet inserted.
    """

    _instance: Optional["MinKeyType"] = None

    def __new__(cls) -> "MinKeyType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __lt__(self, other: object) -> bool:
        return not isinstance(other, MinKeyType)

    def __le__(self, other: object) -> bool:
        return True

    def __gt__(self, other: object) -> bool:
        return False

    def __ge__(self, other: object) -> bool:
        return isinstance(other, MinKeyType)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MinKeyType)

    def __hash__(self) -> int:
        return hash("__wobt_min_key__")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MIN_KEY"


#: The "minus infinity" routing key used by the leftmost reference chain.
MIN_KEY = MinKeyType()

#: Keys as they appear in WOBT index entries (records never use the sentinel).
RoutingKey = Union[Key, MinKeyType]


@dataclass(frozen=True)
class WOBTRecord:
    """A record version stored in a WOBT data node."""

    key: Key
    timestamp: int
    value: bytes = b""

    def serialized_size(self) -> int:
        return 1 + key_size(self.key) + 9 + 4 + len(self.value)


@dataclass(frozen=True)
class WOBTIndexEntry:
    """A ``(key, timestamp, pointer)`` triple stored in a WOBT index node.

    ``key`` is the routing key of the child (its "old key value", possibly
    the :data:`MIN_KEY` sentinel for the leftmost chain) and ``timestamp``
    the time of posting; the WOBT search rule (largest key not exceeding the
    search key, then the last such entry not newer than the search time)
    recovers the right child from these triples.
    """

    key: RoutingKey
    timestamp: int
    child: Address

    def serialized_size(self) -> int:
        key_bytes = 0 if isinstance(self.key, MinKeyType) else key_size(self.key)
        return 1 + key_bytes + 9 + 8


WOBTEntry = Union[WOBTRecord, WOBTIndexEntry]


@dataclass(frozen=True)
class NodeHeader:
    """Metadata burned into a node's first sector when the node is created."""

    is_leaf: bool
    split_from: Optional[int] = None  # region id of the node this was split from


# ----------------------------------------------------------------------
# Sector codec
# ----------------------------------------------------------------------
def encode_sector(
    entries: Sequence[WOBTEntry], header: Optional[NodeHeader] = None
) -> bytes:
    """Serialize one sector: an optional node header plus a run of entries."""
    writer = ByteWriter()
    if header is None:
        writer.put_u8(0)
    else:
        flags = 1 | (2 if header.is_leaf else 0) | (4 if header.split_from is not None else 0)
        writer.put_u8(flags)
        writer.put_u64(header.split_from if header.split_from is not None else 0)
    writer.put_u32(len(entries))
    for entry in entries:
        if isinstance(entry, WOBTRecord):
            writer.put_u8(_ENTRY_TAG_RECORD)
            write_key(writer, entry.key)
            write_timestamp(writer, entry.timestamp)
            write_value(writer, entry.value)
        elif isinstance(entry.key, MinKeyType):
            writer.put_u8(_ENTRY_TAG_INDEX_MIN)
            write_timestamp(writer, entry.timestamp)
            writer.put_u64(entry.child.page_id)
        else:
            writer.put_u8(_ENTRY_TAG_INDEX)
            write_key(writer, entry.key)
            write_timestamp(writer, entry.timestamp)
            writer.put_u64(entry.child.page_id)
    return writer.getvalue()


def decode_sector(data: bytes) -> Tuple[Optional[NodeHeader], List[WOBTEntry]]:
    """Decode one sector produced by :func:`encode_sector`."""
    reader = ByteReader(data)
    flags = reader.get_u8()
    header: Optional[NodeHeader] = None
    if flags & 1:
        split_from = reader.get_u64()
        header = NodeHeader(
            is_leaf=bool(flags & 2),
            split_from=split_from if flags & 4 else None,
        )
    count = reader.get_u32()
    entries: List[WOBTEntry] = []
    for _ in range(count):
        tag = reader.get_u8()
        key: RoutingKey
        if tag == _ENTRY_TAG_INDEX_MIN:
            key = MIN_KEY
        else:
            key = read_key(reader)
        timestamp = read_timestamp(reader)
        if timestamp is None:
            raise SerializationError("WOBT entries always carry a timestamp")
        if tag == _ENTRY_TAG_RECORD:
            value = read_value(reader)
            entries.append(WOBTRecord(key=key, timestamp=timestamp, value=value))
        elif tag in (_ENTRY_TAG_INDEX, _ENTRY_TAG_INDEX_MIN):
            child_id = reader.get_u64()
            entries.append(
                WOBTIndexEntry(
                    key=key,
                    timestamp=timestamp,
                    child=Address.historical(child_id, 0, 0),
                )
            )
        else:
            raise SerializationError(f"unknown WOBT entry tag {tag}")
    return header, entries


def sector_payload_size(entries: Sequence[WOBTEntry], with_header: bool) -> int:
    """Serialized size of a sector holding ``entries`` (used when packing)."""
    size = 1 + 4 + sum(entry.serialized_size() for entry in entries)
    if with_header:
        size += NODE_HEADER_SIZE - 1
    return size


def pack_entries_into_sectors(
    entries: Sequence[WOBTEntry], sector_size: int, header: Optional[NodeHeader]
) -> List[bytes]:
    """Greedily pack consolidated entries into as few sectors as possible.

    Used when a node is created by a split: the copied entries are condensed
    so that "the older index entries ... are packed together filling the
    sector space" (section 2.1).  The node header travels in the first
    sector.
    """
    sectors: List[bytes] = []
    pending: List[WOBTEntry] = []
    current_header = header
    for entry in entries:
        candidate = pending + [entry]
        if sector_payload_size(candidate, current_header is not None) > sector_size and pending:
            sectors.append(encode_sector(pending, current_header))
            current_header = None
            pending = [entry]
        else:
            pending = candidate
    sectors.append(encode_sector(pending, current_header))
    return sectors


# ----------------------------------------------------------------------
# Node view
# ----------------------------------------------------------------------
@dataclass
class WOBTNodeView:
    """An in-memory, insertion-ordered view of one WOBT node's entries.

    The view is reconstructed from the node's burned sectors; it never
    reorders or rewrites anything (the device would refuse anyway).
    """

    address: Address
    is_leaf: bool
    entries: List[WOBTEntry]
    #: backward pointer to the node this one was split from (section 2.5),
    #: used to walk a record's full version history.
    split_from: Optional[int] = None

    # -- search helpers (paper sections 2.2 and 2.5) -----------------------
    def last_entry_for_key(self, key: Key, as_of: Optional[int] = None) -> Optional[WOBTEntry]:
        """Last entry with exactly this key, ignoring entries newer than ``as_of``."""
        result: Optional[WOBTEntry] = None
        for entry in self.entries:
            if as_of is not None and entry.timestamp > as_of:
                continue
            if entry.key == key:
                result = entry
        return result

    def route(self, key: Key, as_of: Optional[int] = None) -> Optional[WOBTIndexEntry]:
        """Apply the WOBT index search rule.

        "Find the key-and-pointer pair such that the key is the largest one
        which does not exceed the search key, and the pair is the last one
        listed in that node with that key" — after ignoring entries newer
        than the search time (section 2.5).
        """
        best_key: Optional[Key] = None
        for entry in self.entries:
            if not isinstance(entry, WOBTIndexEntry):
                continue
            if as_of is not None and entry.timestamp > as_of:
                continue
            if entry.key <= key and (best_key is None or entry.key > best_key):
                best_key = entry.key
        if best_key is None:
            return None
        chosen: Optional[WOBTIndexEntry] = None
        for entry in self.entries:
            if not isinstance(entry, WOBTIndexEntry):
                continue
            if as_of is not None and entry.timestamp > as_of:
                continue
            if entry.key == best_key:
                chosen = entry
        return chosen

    def record_entries(self) -> List[WOBTRecord]:
        return [entry for entry in self.entries if isinstance(entry, WOBTRecord)]

    def index_entries(self) -> List[WOBTIndexEntry]:
        return [entry for entry in self.entries if isinstance(entry, WOBTIndexEntry)]

    def current_records(self) -> List[WOBTRecord]:
        """The most recent version of each key present in a data node."""
        latest: dict = {}
        for entry in self.entries:
            if isinstance(entry, WOBTRecord):
                latest[entry.key] = entry
        return [latest[key] for key in sorted(latest)]

    def current_index_entries(self) -> List[WOBTIndexEntry]:
        """The most recent index entry for each key present in an index node."""
        latest: dict = {}
        for entry in self.entries:
            if isinstance(entry, WOBTIndexEntry):
                latest[entry.key] = entry
        return [latest[key] for key in sorted(latest)]

    def distinct_keys(self) -> List[Key]:
        return sorted({entry.key for entry in self.entries})
