"""Easton's Write-Once B-tree (WOBT), the baseline of paper section 2.

The WOBT keeps *everything* — data, index, every superseded version — on a
single write-once device.  Updates are insertions of new versions; node
splits are by key value *and* current time (two new nodes) or by current time
only (one new node), and the old node always remains in place because burned
sectors cannot be reclaimed.  The structure is a DAG: both the old and the
new index nodes may reference the same children.

The implementation is deliberately literal about the two costs the TSB-tree
was designed to remove:

* every individual insertion burns a whole sector for a single entry
  (section 2.1), so sector utilisation degrades as nodes fill;
* every split copies the current versions into brand-new nodes, so
  long-lived records accumulate many copies (section 2.6).

The public API mirrors the read side of :class:`~repro.core.tsb_tree.TSBTree`
(current lookup, as-of lookup, snapshot, key history) so the two structures
can be driven by the same workloads in the S3 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.records import records_valid_between
from repro.storage.device import Address, OutOfSpaceError
from repro.storage.serialization import Key
from repro.storage.worm import WormDisk
from repro.wobt.nodes import (
    MIN_KEY,
    MinKeyType,
    NodeHeader,
    RoutingKey,
    WOBTEntry,
    WOBTIndexEntry,
    WOBTNodeView,
    WOBTRecord,
    decode_sector,
    encode_sector,
    pack_entries_into_sectors,
    sector_payload_size,
)


class WOBTError(Exception):
    """Raised on invalid WOBT operations."""


@dataclass
class WOBTCounters:
    """Cumulative structural-event counters for one WOBT."""

    inserts: int = 0
    data_key_time_splits: int = 0
    data_time_splits: int = 0
    index_key_time_splits: int = 0
    index_time_splits: int = 0
    root_splits: int = 0
    record_copies_written: int = 0
    index_copies_written: int = 0
    node_accesses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "inserts": self.inserts,
            "data_key_time_splits": self.data_key_time_splits,
            "data_time_splits": self.data_time_splits,
            "index_key_time_splits": self.index_key_time_splits,
            "index_time_splits": self.index_time_splits,
            "root_splits": self.root_splits,
            "record_copies_written": self.record_copies_written,
            "index_copies_written": self.index_copies_written,
            "node_accesses": self.node_accesses,
        }


@dataclass
class WOBTSpaceStats:
    """Space and redundancy measurements for the S3 comparison."""

    sectors_reserved: int = 0
    sectors_burned: int = 0
    bytes_used: int = 0
    bytes_stored: int = 0
    burned_utilization: float = 1.0
    reserved_utilization: float = 1.0
    nodes: int = 0
    data_nodes: int = 0
    index_nodes: int = 0
    record_copies: int = 0
    unique_versions: int = 0
    redundant_copies: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def redundancy_ratio(self) -> float:
        if self.unique_versions == 0:
            return 1.0
        return self.record_copies / self.unique_versions

    def as_dict(self) -> Dict[str, float]:
        return {
            "sectors_reserved": self.sectors_reserved,
            "sectors_burned": self.sectors_burned,
            "bytes_used": self.bytes_used,
            "bytes_stored": self.bytes_stored,
            "burned_utilization": round(self.burned_utilization, 4),
            "reserved_utilization": round(self.reserved_utilization, 4),
            "nodes": self.nodes,
            "data_nodes": self.data_nodes,
            "index_nodes": self.index_nodes,
            "record_copies": self.record_copies,
            "unique_versions": self.unique_versions,
            "redundant_copies": self.redundant_copies,
            "redundancy_ratio": round(self.redundancy_ratio, 4),
        }


class WOBT:
    """A Write-Once B-tree living entirely on a WORM device.

    Parameters
    ----------
    worm:
        The write-once device; a fresh :class:`~repro.storage.worm.WormDisk`
        with 1 KiB sectors by default.
    node_sectors:
        Sectors reserved per node extent.  A node is full when all of its
        sectors have been burned.
    """

    def __init__(
        self,
        worm: Optional[WormDisk] = None,
        node_sectors: int = 8,
    ) -> None:
        if node_sectors < 2:
            raise ValueError("WOBT nodes need at least two sectors")
        self.worm = worm or WormDisk(sector_size=1024)
        self.node_sectors = node_sectors
        self.counters = WOBTCounters()
        #: region id -> (address, view); views are caches over immutable sectors.
        self._nodes: Dict[int, Tuple[Address, WOBTNodeView]] = {}
        #: successive root addresses, oldest first (paper section 2.4).
        self._root_history: List[Address] = []
        self._max_timestamp = 0
        root = self._create_node(is_leaf=True, entries=[], split_from=None)
        self._root_history.append(root.address)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def root_address(self) -> Address:
        return self._root_history[-1]

    @property
    def root_history(self) -> List[Address]:
        """Addresses of every root the tree has had, oldest first."""
        return list(self._root_history)

    @property
    def now(self) -> int:
        return self._max_timestamp

    def insert(self, key: Key, value: bytes, timestamp: Optional[int] = None) -> int:
        """Insert a (new version of a) record.

        As in the TSB-tree, an insert under an existing key is an update: the
        older versions remain in the database forever.
        """
        if timestamp is None:
            timestamp = self._max_timestamp + 1
        if timestamp < self._max_timestamp:
            raise WOBTError(
                f"timestamp {timestamp} precedes latest committed {self._max_timestamp}"
            )
        record = WOBTRecord(key=key, timestamp=timestamp, value=bytes(value))
        path = self._descend_path(key, as_of=None)
        leaf = path[-1]
        if self._has_free_sector(leaf) and self._entry_fits_sector(record):
            self._burn_entries(leaf, [record])
        else:
            self._split_leaf(path, record)
        self._max_timestamp = max(self._max_timestamp, timestamp)
        self.counters.inserts += 1
        return timestamp

    def search_current(self, key: Key) -> Optional[WOBTRecord]:
        """Most recent version of ``key`` (section 2.2)."""
        return self._search(key, as_of=None)

    def search_as_of(self, key: Key, timestamp: int) -> Optional[WOBTRecord]:
        """Version of ``key`` valid at ``timestamp`` (section 2.5)."""
        return self._search(key, as_of=timestamp)

    def snapshot(self, timestamp: int) -> Dict[Key, WOBTRecord]:
        """State of the database as of ``timestamp`` (section 2.5)."""
        result: Dict[Key, WOBTRecord] = {}
        for view in self._reachable_views(as_of=timestamp):
            if not view.is_leaf:
                continue
            for key in {e.key for e in view.record_entries()}:
                entry = view.last_entry_for_key(key, as_of=timestamp)
                if isinstance(entry, WOBTRecord):
                    current = result.get(key)
                    if current is None or entry.timestamp >= current.timestamp:
                        result[key] = entry
        return result

    def range_search(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        as_of: Optional[int] = None,
    ) -> List[WOBTRecord]:
        """Records of keys in ``[low, high)`` valid at ``as_of`` (default: now),
        sorted by key.

        The WOBT has no rectangle-directed descent, so a range scan walks the
        nodes reachable at ``as_of`` — exactly the cost profile section 2.5
        describes for version scans on the write-once structure.
        """
        timestamp = self._max_timestamp if as_of is None else as_of
        results: List[WOBTRecord] = []
        for key, record in self.snapshot(timestamp).items():
            if low is not None and key < low:
                continue
            if high is not None and not key < high:
                continue
            results.append(record)
        results.sort(key=lambda record: record.key)
        return results

    def history_between(self, key: Key, start: int, end: int) -> List[WOBTRecord]:
        """Versions of ``key`` valid at some point in ``[start, end)``, oldest
        first — the time-slice query, answered from the backward-pointer
        history walk of section 2.5."""
        return records_valid_between(self.key_history(key), start, end)

    def key_history(self, key: Key) -> List[WOBTRecord]:
        """All versions of ``key``, following backward pointers (section 2.5)."""
        leaf = self._descend_path(key, as_of=None)[-1]
        versions: Dict[int, WOBTRecord] = {}
        view: Optional[WOBTNodeView] = leaf
        while view is not None:
            found_here = False
            for entry in view.record_entries():
                if entry.key == key:
                    versions[entry.timestamp] = entry
                    found_here = True
            if not found_here and versions:
                # Paper: follow backward pointers until a node containing no
                # earlier version of the record is found.
                break
            if view.split_from is None:
                break
            view = self._load_view(Address.historical(view.split_from, 0, 0))
        return [versions[stamp] for stamp in sorted(versions)]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def space_stats(self) -> WOBTSpaceStats:
        """Space use, sector utilisation and redundancy of the whole WOBT."""
        stats = WOBTSpaceStats()
        stats.sectors_reserved = self.worm.sectors_reserved
        stats.sectors_burned = self.worm.sectors_burned
        stats.bytes_used = self.worm.bytes_used
        stats.bytes_stored = self.worm.bytes_stored
        stats.burned_utilization = self.worm.burned_utilization
        if stats.bytes_used:
            stats.reserved_utilization = stats.bytes_stored / stats.bytes_used
        unique: Set[Tuple] = set()
        for _region, (_address, view) in self._nodes.items():
            stats.nodes += 1
            if view.is_leaf:
                stats.data_nodes += 1
            else:
                stats.index_nodes += 1
            for entry in view.entries:
                if isinstance(entry, WOBTRecord):
                    stats.record_copies += 1
                    unique.add((entry.key, entry.timestamp))
        stats.unique_versions = len(unique)
        stats.redundant_copies = stats.record_copies - stats.unique_versions
        stats.counters = self.counters.as_dict()
        return stats

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def _create_node(
        self,
        is_leaf: bool,
        entries: Sequence[WOBTEntry],
        split_from: Optional[int],
    ) -> WOBTNodeView:
        """Allocate a node extent and burn the consolidated ``entries`` into it."""
        address = self.worm.allocate_node(self.node_sectors)
        header = NodeHeader(is_leaf=is_leaf, split_from=split_from)
        sectors = pack_entries_into_sectors(entries, self.worm.sector_size, header)
        if len(sectors) > self.node_sectors:
            raise OutOfSpaceError(
                f"{len(entries)} consolidated entries need {len(sectors)} sectors but "
                f"WOBT nodes hold {self.node_sectors}"
            )
        for sector in sectors:
            self.worm.write_sector_in_node(address, sector)
        view = WOBTNodeView(
            address=address,
            is_leaf=is_leaf,
            entries=list(entries),
            split_from=split_from,
        )
        self._nodes[address.page_id] = (address, view)
        if is_leaf:
            self.counters.record_copies_written += len(entries)
        else:
            self.counters.index_copies_written += len(entries)
        return view

    def drop_view_cache(self) -> None:
        """Forget the decoded node views; later reads re-decode burned sectors."""
        self._nodes.clear()

    def _load_view(self, address: Address) -> WOBTNodeView:
        self.counters.node_accesses += 1
        cached = self._nodes.get(address.page_id)
        if cached is not None:
            return cached[1]
        # Reconstruct the view from the burned sectors (e.g. after reopening).
        header: Optional[NodeHeader] = None
        entries: List[WOBTEntry] = []
        for sector in self.worm.read_node_sectors(address):
            sector_header, sector_entries = decode_sector(sector)
            if sector_header is not None:
                header = sector_header
            entries.extend(sector_entries)
        if header is None:
            raise WOBTError(f"node {address} has no header sector")
        view = WOBTNodeView(
            address=address,
            is_leaf=header.is_leaf,
            entries=entries,
            split_from=header.split_from,
        )
        self._nodes[address.page_id] = (address, view)
        return view

    def _has_free_sector(self, view: WOBTNodeView) -> bool:
        return (
            self.worm.sectors_used_in_node(view.address) < self.node_sectors
        )

    def _free_sectors(self, view: WOBTNodeView) -> int:
        return self.node_sectors - self.worm.sectors_used_in_node(view.address)

    def _entry_fits_sector(self, entry: WOBTEntry) -> bool:
        return sector_payload_size([entry], False) <= self.worm.sector_size

    def _burn_entries(self, view: WOBTNodeView, entries: Sequence[WOBTEntry]) -> None:
        """Burn ``entries`` into the next free sector(s) of an existing node."""
        image = encode_sector(entries, None)
        if len(image) <= self.worm.sector_size:
            self.worm.write_sector_in_node(view.address, image)
        else:
            for entry in entries:
                self.worm.write_sector_in_node(view.address, encode_sector([entry], None))
        view.entries.extend(entries)
        if view.is_leaf:
            self.counters.record_copies_written += len(entries)
        else:
            self.counters.index_copies_written += len(entries)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _descend_path(self, key: Key, as_of: Optional[int]) -> List[WOBTNodeView]:
        """Root-to-leaf path for ``key`` at ``as_of`` (None = current)."""
        path: List[WOBTNodeView] = []
        view = self._load_view(self.root_address)
        while True:
            path.append(view)
            if view.is_leaf:
                return path
            routed = view.route(key, as_of=as_of)
            if routed is None:
                # The search key precedes every key the tree has seen; the
                # leftmost (oldest-keyed) child is the only possible home.
                candidates = [
                    e for e in view.index_entries()
                    if as_of is None or e.timestamp <= as_of
                ]
                if not candidates:
                    return path
                lowest = min(candidates, key=lambda e: (e.key, e.timestamp))
                latest = [e for e in candidates if e.key == lowest.key][-1]
                routed = latest
            view = self._load_view(routed.child)

    def _search(self, key: Key, as_of: Optional[int]) -> Optional[WOBTRecord]:
        path = self._descend_path(key, as_of=as_of)
        leaf = path[-1]
        if not leaf.is_leaf:
            return None
        entry = leaf.last_entry_for_key(key, as_of=as_of)
        if isinstance(entry, WOBTRecord):
            return entry
        return None

    def _reachable_views(self, as_of: Optional[int]) -> List[WOBTNodeView]:
        """Every node reachable from the current root, deduplicated."""
        seen: Set[int] = set()
        stack = [self.root_address]
        views: List[WOBTNodeView] = []
        while stack:
            address = stack.pop()
            if address.page_id in seen:
                continue
            seen.add(address.page_id)
            view = self._load_view(address)
            views.append(view)
            if not view.is_leaf:
                for entry in view.index_entries():
                    if as_of is not None and entry.timestamp > as_of:
                        continue
                    stack.append(entry.child)
        return views

    # ------------------------------------------------------------------
    # Splits (paper sections 2.3 and 2.4)
    # ------------------------------------------------------------------
    def _split_leaf(self, path: List[WOBTNodeView], incoming: WOBTRecord) -> None:
        """Split a full leaf and place ``incoming`` in the appropriate new node."""
        leaf = path[-1]
        current = leaf.current_records()
        merged: Dict[Key, WOBTRecord] = {record.key: record for record in current}
        merged[incoming.key] = incoming
        consolidated = [merged[key] for key in sorted(merged)]
        reference_key = self._reference_key(path, leaf, consolidated)
        new_entries = self._split_entries(
            node=leaf,
            consolidated=consolidated,
            is_leaf=True,
            split_time=incoming.timestamp,
            reference_key=reference_key,
        )
        self._post_to_parent(path[:-1], new_entries, split_time=incoming.timestamp)

    def _reference_key(
        self,
        path: List[WOBTNodeView],
        node: WOBTNodeView,
        consolidated: Sequence[WOBTEntry],
    ) -> RoutingKey:
        """The "old key value" under which ``node`` is referenced by its parent.

        The paper (section 2.3) posts the *old key value* together with the
        new split value, so the new node inherits the same routing key as the
        node it was split from; this keeps searches for keys below the node's
        smallest stored key routed to the newest copy.  A root has no parent:
        its conceptual routing key is "minus infinity" (section 2.4), the
        :data:`~repro.wobt.nodes.MIN_KEY` sentinel.
        """
        del consolidated  # the reference key never depends on the contents
        if len(path) >= 2:
            parent = path[-2]
            reference: Optional[RoutingKey] = None
            for entry in parent.index_entries():
                if entry.child.page_id == node.address.page_id:
                    reference = entry.key
            if reference is not None:
                return reference
        return MIN_KEY

    def _split_entries(
        self,
        node: WOBTNodeView,
        consolidated: Sequence[WOBTEntry],
        is_leaf: bool,
        split_time: int,
        reference_key: RoutingKey,
    ) -> List[WOBTIndexEntry]:
        """Create the new node(s) for a split and return the parent postings.

        Chooses between a key-and-current-time split (two new nodes, Figure 3)
        and a pure current-time split (one new node, Figure 4) depending on
        whether the consolidated current entries are enough to make two
        worthwhile nodes.  The left/only new node is posted under the old
        reference key; the right node under the split value.
        """
        payload = sum(entry.serialized_size() for entry in consolidated)
        half_capacity = (self.node_sectors * self.worm.sector_size) // 2
        distinct = sorted({entry.key for entry in consolidated})
        do_key_split = (
            len(distinct) >= 2
            and payload > half_capacity
            and not isinstance(distinct[len(distinct) // 2], MinKeyType)
        )

        if do_key_split:
            split_key = distinct[len(distinct) // 2]
            left = [entry for entry in consolidated if entry.key < split_key]
            right = [entry for entry in consolidated if not entry.key < split_key]
            left_node = self._create_node(is_leaf, left, split_from=node.address.page_id)
            right_node = self._create_node(is_leaf, right, split_from=node.address.page_id)
            if is_leaf:
                self.counters.data_key_time_splits += 1
            else:
                self.counters.index_key_time_splits += 1
            return [
                WOBTIndexEntry(key=reference_key, timestamp=split_time, child=left_node.address),
                WOBTIndexEntry(key=split_key, timestamp=split_time, child=right_node.address),
            ]

        new_node = self._create_node(
            is_leaf, list(consolidated), split_from=node.address.page_id
        )
        if is_leaf:
            self.counters.data_time_splits += 1
        else:
            self.counters.index_time_splits += 1
        return [
            WOBTIndexEntry(
                key=reference_key,
                timestamp=split_time,
                child=new_node.address,
            )
        ]

    def _post_to_parent(
        self,
        ancestor_path: List[WOBTNodeView],
        new_entries: List[WOBTIndexEntry],
        split_time: int,
    ) -> None:
        """Post new index entries, splitting ancestors (and the root) as needed."""
        if not ancestor_path:
            self._grow_root(new_entries, split_time)
            return
        parent = ancestor_path[-1]
        needed = 1 if sector_payload_size(new_entries, False) <= self.worm.sector_size else len(new_entries)
        if self._free_sectors(parent) >= needed:
            self._burn_entries(parent, new_entries)
            return
        # Parent is full: consolidate its current entries plus the new ones
        # into new index node(s) and recurse upward.
        merged: Dict[Key, WOBTIndexEntry] = {
            entry.key: entry for entry in parent.current_index_entries()
        }
        for entry in new_entries:
            merged[entry.key] = entry
        consolidated = [merged[key] for key in sorted(merged)]
        reference_key = self._reference_key(ancestor_path, parent, consolidated)
        replacement_entries = self._split_entries(
            node=parent,
            consolidated=consolidated,
            is_leaf=False,
            split_time=split_time,
            reference_key=reference_key,
        )
        self._post_to_parent(ancestor_path[:-1], replacement_entries, split_time)

    def _grow_root(self, new_entries: List[WOBTIndexEntry], split_time: int) -> None:
        """Create a new root referencing the old root and the new node(s).

        Section 2.4: after a time-only split the new root has two entries
        (lowest key -> old root, lowest key -> new node); after a key-and-
        time split it has three (lowest key -> old root, lowest key -> left,
        split key -> right).  A list of successive root addresses is kept.
        """
        old_root = self._load_view(self.root_address)
        lowest_key = new_entries[0].key
        root_entries: List[WOBTIndexEntry] = [
            WOBTIndexEntry(key=lowest_key, timestamp=0, child=old_root.address)
        ]
        root_entries.extend(new_entries)
        new_root = self._create_node(is_leaf=False, entries=root_entries, split_from=None)
        self._root_history.append(new_root.address)
        self.counters.root_splits += 1
