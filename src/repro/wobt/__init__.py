"""Easton's Write-Once B-tree — the baseline structure of paper section 2."""

from repro.wobt.nodes import (
    MIN_KEY,
    MinKeyType,
    NodeHeader,
    WOBTEntry,
    WOBTIndexEntry,
    WOBTNodeView,
    WOBTRecord,
    decode_sector,
    encode_sector,
    pack_entries_into_sectors,
)
from repro.wobt.wobt_tree import WOBT, WOBTCounters, WOBTError, WOBTSpaceStats

__all__ = [
    "MIN_KEY",
    "MinKeyType",
    "NodeHeader",
    "WOBT",
    "WOBTCounters",
    "WOBTEntry",
    "WOBTError",
    "WOBTIndexEntry",
    "WOBTNodeView",
    "WOBTRecord",
    "WOBTSpaceStats",
    "decode_sector",
    "encode_sector",
    "pack_entries_into_sectors",
]
