"""Node-splitting mechanics of the Time-Split B-tree (paper section 3).

This module contains the *pure* split computations — given a node's contents
and a split parameter, compute what goes where.  The tree itself
(:mod:`repro.core.tsb_tree`) is responsible for allocating pages, appending
historical regions and updating parents; the policies
(:mod:`repro.core.policy`) are responsible for *choosing* between the splits
computed here.

Implemented rules, each quoted from the paper:

* **Time-split rule** (section 3.1) for data nodes::

      1. All entries with time less than T go in the old node.
      2. All entries with time greater or equal to T go in the new node.
      3. For each key used in some entry, the entry with the largest time
         smaller than or equal to T must be in the new node.

  The "old node" becomes the historical node (migrated to the optical disk);
  the "new node" keeps the current data on the magnetic disk.  Rule 3 is what
  creates redundancy: a version alive across the split time appears in both.
  Provisional (uncommitted) versions carry no timestamp and always stay in
  the current node (section 4).

* **Pure key split** (section 3.1, Figure 5) for data nodes: B+-tree style —
  versions move by key, nothing is copied, and the new index entry inherits
  the start time of the old entry.

* **Index Node Keyspace Split Rule** (section 3.5): entries whose key range
  lies at or below the split value go left, those at or above go right, and
  entries whose key range *strictly contains* the split value — which are
  guaranteed to reference historical nodes — are copied into both halves.

* **Index node time split** (section 3.5, Figures 8 and 9): allowed only when
  a time T exists such that no entry responsible for any time before T
  references a current node; then entries wholly before T move to the
  historical index node, entries crossing T (all historical) are copied to
  both, and entries at or after T stay current.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.nodes import IndexEntry
from repro.core.records import (
    Rectangle,
    RecordError,
    Version,
    group_by_key,
    latest_committed,
)
from repro.storage.serialization import Key


class SplitError(Exception):
    """Raised when a requested split cannot be performed."""


class SplitKind(enum.Enum):
    """Which dimension a split divides."""

    KEY = "key"
    TIME = "time"


@dataclass(frozen=True)
class SplitDecision:
    """A policy's answer to "this node is full — what do we do?"."""

    kind: SplitKind
    split_key: Optional[Key] = None
    split_time: Optional[int] = None

    @staticmethod
    def key(split_key: Key) -> "SplitDecision":
        return SplitDecision(kind=SplitKind.KEY, split_key=split_key)

    @staticmethod
    def time(split_time: int) -> "SplitDecision":
        return SplitDecision(kind=SplitKind.TIME, split_time=split_time)


# ----------------------------------------------------------------------
# Data-node splits
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DataTimeSplit:
    """Result of applying the time-split rule to a data node's versions."""

    split_time: int
    historical: Tuple[Version, ...]
    current: Tuple[Version, ...]

    @property
    def redundant(self) -> Tuple[Version, ...]:
        """Versions stored in both halves (alive across the split time)."""
        historical_ids = {version.identity() for version in self.historical}
        return tuple(
            version for version in self.current if version.identity() in historical_ids
        )

    @property
    def redundant_bytes(self) -> int:
        return sum(version.serialized_size() for version in self.redundant)

    @property
    def historical_bytes(self) -> int:
        return sum(version.serialized_size() for version in self.historical)

    @property
    def current_bytes(self) -> int:
        return sum(version.serialized_size() for version in self.current)


def time_split_versions(versions: Sequence[Version], split_time: int) -> DataTimeSplit:
    """Apply the section 3.1 time-split rule at ``split_time``.

    Raises :class:`SplitError` if the split would leave the historical node
    empty (no version precedes the split time), because migrating nothing is
    pointless and would create an empty historical region.
    """
    historical: List[Version] = []
    current: List[Version] = []
    for key, group in group_by_key(versions).items():
        committed = [v for v in group if v.timestamp is not None]
        provisional = [v for v in group if v.timestamp is None]
        # Rule 1: strictly-older versions belong to the historical node.
        before = [v for v in committed if v.timestamp < split_time]
        # Rule 2: versions at or after the split time stay current.
        after = [v for v in committed if v.timestamp >= split_time]
        historical.extend(before)
        current.extend(after)
        # Rule 3: the version valid *at* the split time must be in the
        # current node.  When its timestamp is strictly before the split time
        # it is therefore stored twice — the redundancy the paper accepts to
        # keep snapshots clustered.
        if before and not any(v.timestamp == split_time for v in after):
            alive_at_split = max(before, key=lambda v: v.timestamp)  # type: ignore[arg-type]
            current.append(alive_at_split)
        # Uncommitted versions never migrate (section 4).
        current.extend(provisional)
    if not historical:
        raise SplitError(
            f"time split at {split_time} would migrate nothing: "
            "no committed version precedes the split time"
        )
    return DataTimeSplit(
        split_time=split_time,
        historical=tuple(historical),
        current=tuple(current),
    )


def key_split_versions(
    versions: Sequence[Version], split_key: Key
) -> Tuple[Tuple[Version, ...], Tuple[Version, ...]]:
    """Pure key split: versions with ``key < split_key`` stay, the rest move.

    Nothing is copied; this is the B+-tree-style split the erasable magnetic
    disk makes possible (section 3: "the key splits on magnetic disk are more
    like those in B+-trees since we need not keep the old node intact").
    """
    left = tuple(version for version in versions if version.key < split_key)
    right = tuple(version for version in versions if not version.key < split_key)
    if not left or not right:
        raise SplitError(
            f"key split at {split_key!r} puts every version on one side"
        )
    return left, right


def choose_key_split_value(versions: Sequence[Version]) -> Key:
    """Pick a key split value: the median distinct key (by stored bytes).

    The median is weighted by serialized size so that a key with many or
    large versions does not leave one half nearly full.
    """
    grouped = group_by_key(versions)
    if len(grouped) < 2:
        raise SplitError("cannot key split a node holding a single distinct key")
    keys = sorted(grouped)
    sizes = [sum(v.serialized_size() for v in grouped[key]) for key in keys]
    total = sum(sizes)
    running = 0
    for key, size in zip(keys, sizes):
        running += size
        if running * 2 >= total:
            # Splitting *at* a key sends that key right; never pick the
            # lowest key (the left half would be empty).
            if key == keys[0]:
                return keys[1]
            return key
    return keys[-1]  # pragma: no cover - loop always returns


def candidate_split_times(versions: Sequence[Version]) -> List[int]:
    """Distinct committed timestamps that are legal time-split values.

    A legal split time must leave at least one committed version strictly
    before it, so the earliest committed timestamp is excluded.
    """
    stamps = sorted({v.timestamp for v in versions if v.timestamp is not None})
    return stamps[1:]


def last_update_time(versions: Sequence[Version]) -> Optional[int]:
    """Commit time of the most recent *update* (second or later version of a key).

    Section 3.3 recommends this as a split time when insertions follow the
    last update: splitting there keeps freshly inserted records out of the
    historical node while still migrating every superseded version.
    Returns ``None`` when the node contains no updates at all.
    """
    best: Optional[int] = None
    for _key, group in group_by_key(versions).items():
        committed = [v for v in group if v.timestamp is not None]
        if len(committed) < 2:
            continue
        update_stamp = committed[-1].timestamp
        assert update_stamp is not None
        if best is None or update_stamp > best:
            best = update_stamp
    return best


def evaluate_time_split(
    versions: Sequence[Version], split_time: int
) -> Optional[DataTimeSplit]:
    """Like :func:`time_split_versions` but returns ``None`` when illegal."""
    try:
        return time_split_versions(versions, split_time)
    except SplitError:
        return None


def min_redundancy_split_time(versions: Sequence[Version]) -> Optional[int]:
    """Candidate split time minimising redundant bytes.

    Ties are broken toward the *latest* time, which minimises the size of the
    current node (the quantity stored on the expensive magnetic device).
    """
    best_time: Optional[int] = None
    best_cost: Optional[Tuple[int, int]] = None
    for candidate in candidate_split_times(versions):
        split = evaluate_time_split(versions, candidate)
        if split is None:
            continue
        cost = (split.redundant_bytes, split.current_bytes)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_time = candidate
    return best_time


# ----------------------------------------------------------------------
# Index-node splits
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexKeySplit:
    """Result of the Index Node Keyspace Split Rule."""

    split_key: Key
    left: Tuple[IndexEntry, ...]
    right: Tuple[IndexEntry, ...]
    copied: Tuple[IndexEntry, ...]


def index_key_split(entries: Sequence[IndexEntry], split_key: Key) -> IndexKeySplit:
    """Apply the section 3.5 keyspace split rule to index entries.

    Entries whose key range strictly contains the split value are copied into
    both halves; the paper proves these always reference historical nodes,
    which :func:`repro.core.checker.check_tree` asserts.
    """
    left: List[IndexEntry] = []
    right: List[IndexEntry] = []
    copied: List[IndexEntry] = []
    for entry in entries:
        keys = entry.region.keys
        upper_at_or_below = keys.high is not None and not split_key < keys.high
        lower_at_or_above = keys.low is not None and not keys.low < split_key
        if upper_at_or_below:
            left.append(entry)
        elif lower_at_or_above:
            right.append(entry)
        else:
            # Key range strictly contains the split value: copy to both.
            copied.append(entry)
            left.append(entry)
            right.append(entry)
    if not left or not right:
        raise SplitError(f"index key split at {split_key!r} leaves one half empty")
    return IndexKeySplit(
        split_key=split_key,
        left=tuple(left),
        right=tuple(right),
        copied=tuple(copied),
    )


def choose_index_split_key(entries: Sequence[IndexEntry]) -> Key:
    """Pick a split value for an index keyspace split.

    Section 3.5: "The split value may be any key value actually used in an
    index entry in the node."  We take the median of the distinct lower
    bounds, excluding the overall minimum (which would leave the left half
    empty).
    """
    bounds = sorted(
        {entry.region.keys.low for entry in entries if entry.region.keys.low is not None}
    )
    if not bounds:
        raise SplitError("index node has no finite key bounds to split at")
    candidates = [
        bound
        for bound in bounds
        if any(
            entry.region.keys.high is not None
            and not bound < entry.region.keys.high
            for entry in entries
        )
        and any(
            entry.region.keys.low is not None and not entry.region.keys.low < bound
            for entry in entries
        )
    ]
    if not candidates:
        raise SplitError("no key value splits this index node into two non-empty halves")
    return candidates[len(candidates) // 2]


@dataclass(frozen=True)
class IndexTimeSplit:
    """Result of a (local) index-node time split."""

    split_time: int
    historical: Tuple[IndexEntry, ...]
    current: Tuple[IndexEntry, ...]
    copied: Tuple[IndexEntry, ...]


def find_local_index_split_time(entries: Sequence[IndexEntry]) -> Optional[int]:
    """Largest time T at which this index node can be *locally* time split.

    The constraint (section 3.5): no entry referencing a current node may be
    placed in the historical index node, because current children can still
    split and their parent entries must remain updatable.  Therefore T must
    not exceed the start time of any current entry's region, and at least one
    entry must end at or before T (otherwise nothing would migrate).

    Returns ``None`` when no such T exists — the Figure 9 situation, where an
    old data node that has never been time split blocks the index split.
    """
    if not entries:
        return None
    current_starts = [
        entry.region.times.start for entry in entries if entry.is_current
    ]
    limit: Optional[int] = min(current_starts) if current_starts else None
    candidate: Optional[int] = None
    for entry in entries:
        end = entry.region.times.end
        if end is None:
            continue
        if limit is not None and end > limit:
            continue
        if candidate is None or end > candidate:
            candidate = end
    return candidate


def index_time_split(entries: Sequence[IndexEntry], split_time: int) -> IndexTimeSplit:
    """Split index entries at ``split_time`` (which must be local — see above)."""
    historical: List[IndexEntry] = []
    current: List[IndexEntry] = []
    copied: List[IndexEntry] = []
    for entry in entries:
        times = entry.region.times
        if times.end is not None and times.end <= split_time:
            historical.append(entry)
        elif times.start >= split_time:
            current.append(entry)
        else:
            # The entry's time range crosses the split time.
            if entry.is_current:
                raise SplitError(
                    f"index time split at {split_time} is not local: entry "
                    f"{entry} references a current node and spans the split time"
                )
            copied.append(entry)
            historical.append(entry)
            current.append(entry)
    if not historical:
        raise SplitError(f"index time split at {split_time} would migrate nothing")
    if not current:
        raise SplitError(
            f"index time split at {split_time} would leave no current entries"
        )
    return IndexTimeSplit(
        split_time=split_time,
        historical=tuple(historical),
        current=tuple(current),
        copied=tuple(copied),
    )


# ----------------------------------------------------------------------
# Region bookkeeping shared by the tree
# ----------------------------------------------------------------------
def split_region_by_key(region: Rectangle, split_key: Key) -> Tuple[Rectangle, Rectangle]:
    """Split a node's rectangle along the key axis."""
    try:
        left_keys, right_keys = region.keys.split_at(split_key)
    except RecordError as exc:
        raise SplitError(str(exc)) from exc
    return Rectangle(left_keys, region.times), Rectangle(right_keys, region.times)


def split_region_by_time(
    region: Rectangle, split_time: int
) -> Tuple[Rectangle, Rectangle]:
    """Split a node's rectangle along the time axis."""
    try:
        earlier, later = region.times.split_at(split_time)
    except RecordError as exc:
        raise SplitError(str(exc)) from exc
    return Rectangle(region.keys, earlier), Rectangle(region.keys, later)
