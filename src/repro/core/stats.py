"""Space-use and redundancy accounting for a TSB-tree.

Section 5 of the paper announces the measurements the authors planned for
their implementation: *"total space use, space use in the current database,
and amount of redundancy, under different splitting policies and with
different rates of update versus insertion."*  :func:`collect_space_stats`
computes exactly those quantities (plus the supporting node counts and device
utilisation figures) by walking the tree and interrogating the devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.nodes import DataNode, IndexNode
from repro.core.tsb_tree import TSBTree
from repro.storage.costmodel import CostModel


@dataclass
class SpaceStats:
    """A snapshot of where every byte of the database lives.

    Attributes mirror the section 5 measurement plan:

    * ``magnetic_*`` — the current database (``SpaceM`` in the cost function);
    * ``historical_*`` — the historical database (``SpaceO``);
    * ``redundant_versions`` / ``redundant_bytes`` — versions stored more than
      once because they were alive across a time split (the paper's
      "amount of redundancy");
    * ``storage_cost`` is filled in by :meth:`with_cost_model`.
    """

    # current (magnetic) database
    magnetic_pages: int = 0
    magnetic_bytes_used: int = 0
    magnetic_bytes_stored: int = 0
    current_data_nodes: int = 0
    current_index_nodes: int = 0
    # historical (optical) database
    historical_bytes_used: int = 0
    historical_bytes_stored: int = 0
    historical_sectors: int = 0
    historical_data_nodes: int = 0
    historical_index_nodes: int = 0
    historical_utilization: float = 1.0
    # logical contents
    total_versions_stored: int = 0
    unique_versions: int = 0
    redundant_versions: int = 0
    total_version_bytes: int = 0
    redundant_bytes: int = 0
    live_keys: int = 0
    tree_height: int = 0
    # derived
    storage_cost: Optional[float] = None
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes_used(self) -> int:
        """Total device capacity consumed by both halves of the database."""
        return self.magnetic_bytes_used + self.historical_bytes_used

    @property
    def redundancy_ratio(self) -> float:
        """Stored versions per unique version (1.0 means no redundancy)."""
        if self.unique_versions == 0:
            return 1.0
        return self.total_versions_stored / self.unique_versions

    @property
    def current_database_fraction(self) -> float:
        """Fraction of total consumed capacity that sits on the magnetic disk."""
        total = self.total_bytes_used
        if total == 0:
            return 0.0
        return self.magnetic_bytes_used / total

    def with_cost_model(self, cost_model: CostModel) -> "SpaceStats":
        """Fill in ``storage_cost`` using the paper's ``CS`` formula."""
        self.storage_cost = cost_model.storage_cost(
            self.magnetic_bytes_used, self.historical_bytes_used
        )
        return self

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict (used by the report tables)."""
        return {
            "magnetic_pages": self.magnetic_pages,
            "magnetic_bytes_used": self.magnetic_bytes_used,
            "magnetic_bytes_stored": self.magnetic_bytes_stored,
            "historical_bytes_used": self.historical_bytes_used,
            "historical_bytes_stored": self.historical_bytes_stored,
            "historical_sectors": self.historical_sectors,
            "historical_utilization": round(self.historical_utilization, 4),
            "total_bytes_used": self.total_bytes_used,
            "current_data_nodes": self.current_data_nodes,
            "current_index_nodes": self.current_index_nodes,
            "historical_data_nodes": self.historical_data_nodes,
            "historical_index_nodes": self.historical_index_nodes,
            "total_versions_stored": self.total_versions_stored,
            "unique_versions": self.unique_versions,
            "redundant_versions": self.redundant_versions,
            "redundant_bytes": self.redundant_bytes,
            "redundancy_ratio": round(self.redundancy_ratio, 4),
            "current_database_fraction": round(self.current_database_fraction, 4),
            "live_keys": self.live_keys,
            "tree_height": self.tree_height,
            "storage_cost": self.storage_cost if self.storage_cost is not None else 0.0,
        }


def collect_space_stats(
    tree: TSBTree, cost_model: Optional[CostModel] = None
) -> SpaceStats:
    """Walk ``tree`` and its devices and return a :class:`SpaceStats` snapshot."""
    tree.flush()
    stats = SpaceStats()
    stats.tree_height = tree.height
    stats.counters = tree.counters.as_dict()

    seen_versions: Set[Tuple] = set()
    live_keys: Set = set()

    for node in tree.iter_nodes():
        if isinstance(node, DataNode):
            if node.address.is_magnetic:
                stats.current_data_nodes += 1
            else:
                stats.historical_data_nodes += 1
            for version in node.versions:
                stats.total_versions_stored += 1
                stats.total_version_bytes += version.serialized_size()
                identity = version.identity()
                if identity in seen_versions:
                    stats.redundant_versions += 1
                    stats.redundant_bytes += version.serialized_size()
                else:
                    seen_versions.add(identity)
                live_keys.add(version.key)
        elif isinstance(node, IndexNode):
            if node.address.is_magnetic:
                stats.current_index_nodes += 1
            else:
                stats.historical_index_nodes += 1

    stats.unique_versions = len(seen_versions)
    stats.live_keys = len(live_keys)

    magnetic = tree.magnetic
    stats.magnetic_pages = magnetic.allocated_pages
    stats.magnetic_bytes_used = magnetic.bytes_used
    stats.magnetic_bytes_stored = magnetic.bytes_stored

    historical = tree.historical
    stats.historical_bytes_used = getattr(historical, "bytes_used", 0)
    stats.historical_bytes_stored = getattr(historical, "bytes_stored", 0)
    stats.historical_sectors = getattr(historical, "sectors_burned", 0)
    stats.historical_utilization = getattr(historical, "burned_utilization", 1.0)

    if cost_model is not None:
        stats.with_cost_model(cost_model)
    return stats
