"""The Time-Split B-tree: the paper's primary contribution.

Public surface:

* :class:`TSBTree` — the multiversion access method itself.
* :mod:`repro.core.policy` — the splitting policies of sections 3.2/3.3.
* :class:`SecondaryIndex` — versioned secondary indexes (section 3.6).
* :func:`collect_space_stats` — the section 5 space/redundancy measurements.
* :func:`check_tree` / :func:`assert_tree_valid` — structural invariants.
"""

from repro.core.checker import Violation, assert_tree_valid, check_tree
from repro.core.nodes import DataNode, IndexEntry, IndexNode, NodeError, decode_node
from repro.core.policy import (
    AlwaysKeySplitPolicy,
    AlwaysTimeSplitPolicy,
    CostDrivenPolicy,
    SplitContext,
    SplitPolicy,
    ThresholdPolicy,
    WOBTEmulationPolicy,
    make_policy,
)
from repro.core.records import (
    KeyRange,
    Rectangle,
    RecordError,
    TimeRange,
    Version,
    latest_committed,
    version_as_of,
)
from repro.core.secondary import SecondaryIndex, composite_key, split_composite_key
from repro.core.split import (
    SplitDecision,
    SplitError,
    SplitKind,
    index_key_split,
    index_time_split,
    key_split_versions,
    time_split_versions,
)
from repro.core.stats import SpaceStats, collect_space_stats
from repro.core.tsb_tree import (
    ProvisionalVersionError,
    RecordTooLargeError,
    TimestampOrderError,
    TreeCounters,
    TSBTree,
    TSBTreeError,
)

__all__ = [
    "AlwaysKeySplitPolicy",
    "AlwaysTimeSplitPolicy",
    "CostDrivenPolicy",
    "DataNode",
    "IndexEntry",
    "IndexNode",
    "KeyRange",
    "NodeError",
    "ProvisionalVersionError",
    "Rectangle",
    "RecordError",
    "RecordTooLargeError",
    "SecondaryIndex",
    "SpaceStats",
    "SplitContext",
    "SplitDecision",
    "SplitError",
    "SplitKind",
    "SplitPolicy",
    "ThresholdPolicy",
    "TimeRange",
    "TimestampOrderError",
    "TreeCounters",
    "TSBTree",
    "TSBTreeError",
    "Version",
    "Violation",
    "WOBTEmulationPolicy",
    "assert_tree_valid",
    "check_tree",
    "collect_space_stats",
    "composite_key",
    "decode_node",
    "index_key_split",
    "index_time_split",
    "key_split_versions",
    "latest_committed",
    "make_policy",
    "split_composite_key",
    "time_split_versions",
    "version_as_of",
]
