"""Secondary indexes as Time-Split B-trees (paper section 3.6).

A secondary index maps a *secondary attribute value* to the primary keys of
the records carrying that value, versioned over time exactly like the primary
index.  The paper's design:

* secondary entries are ``<timestamp, secondary key, primary key>`` records;
* each entry inherits the timestamp of the primary-record change that caused
  it;
* when the primary data splits (by key or by time), secondary indexes do not
  change;
* the secondary tree alone can answer questions such as "how many records had
  secondary value V at time T" without touching the primary data.

Because one secondary value maps to many primary keys, the secondary TSB-tree
is keyed by a *composite key* built from the secondary value and the primary
key.  When a record's secondary attribute changes, the old association is
closed by a tombstone entry stamped with the change time and a new
association is opened under the new secondary value — both are ordinary
versioned inserts, so the full history remains queryable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import SplitPolicy
from repro.core.tsb_tree import TSBTree
from repro.storage.magnetic import MagneticDisk
from repro.storage.serialization import Key
from repro.storage.worm import WormDisk

#: Width used when zero-padding integer components of composite keys so that
#: their lexicographic order matches numeric order.
_INT_PAD = 20


def encode_component(component: Key) -> str:
    """Encode one key component so lexicographic order is meaningful."""
    if isinstance(component, bool) or not isinstance(component, (int, str)):
        raise TypeError(f"unsupported key component type {type(component).__name__}")
    if isinstance(component, int):
        if component < 0:
            raise ValueError("negative integer components are not supported")
        return f"i{component:0{_INT_PAD}d}"
    if "\x00" in component:
        raise ValueError("string key components must not contain NUL")
    return f"s{component}"


def composite_key(secondary: Key, primary: Key) -> str:
    """Build the secondary tree's key for one (secondary value, primary key) pair."""
    return f"{encode_component(secondary)}\x00{encode_component(primary)}"


def decode_component(text: str) -> Key:
    """Invert :func:`encode_component`."""
    if not text:
        raise ValueError("empty key component")
    tag, payload = text[0], text[1:]
    if tag == "i":
        return int(payload)
    if tag == "s":
        return payload
    raise ValueError(f"unknown key component tag {tag!r}")


def split_composite_key(key: str) -> Tuple[Key, Key]:
    """Invert :func:`composite_key`."""
    secondary_text, primary_text = key.split("\x00", 1)
    return decode_component(secondary_text), decode_component(primary_text)


class SecondaryIndex:
    """A versioned secondary index over one attribute of a primary TSB-tree.

    The index is itself a TSB-tree: current associations live on its magnetic
    device and superseded ones migrate to its historical device under the
    same splitting policies as the primary tree.

    Parameters mirror :class:`~repro.core.tsb_tree.TSBTree`; by default the
    secondary index gets its own pair of (simulated) devices, matching the
    paper's description of secondary indexes spanning both databases.
    """

    def __init__(
        self,
        attribute: str,
        page_size: int = 1024,
        policy: Optional[SplitPolicy] = None,
        magnetic: Optional[MagneticDisk] = None,
        historical: Optional[WormDisk] = None,
    ) -> None:
        self.attribute = attribute
        self.tree = TSBTree(
            page_size=page_size,
            policy=policy,
            magnetic=magnetic,
            historical=historical,
        )
        #: primary key -> current secondary value, kept to close old
        #: associations when the attribute changes.
        self._current_value: Dict[Key, Key] = {}

    # ------------------------------------------------------------------
    # Maintenance (called when primary records change)
    # ------------------------------------------------------------------
    def record_change(
        self, primary_key: Key, new_value: Optional[Key], timestamp: int
    ) -> None:
        """Register that ``primary_key``'s attribute became ``new_value`` at ``timestamp``.

        ``new_value=None`` records that the primary record was (logically)
        deleted or stopped carrying the attribute.  The entry inherits the
        timestamp of the primary change, per section 3.6.
        """
        old_value = self._current_value.get(primary_key)
        if old_value == new_value:
            return
        if old_value is not None:
            self.tree.delete(composite_key(old_value, primary_key), timestamp=timestamp)
        if new_value is not None:
            self.tree.insert(
                composite_key(new_value, primary_key),
                self._encode_primary(primary_key),
                timestamp=timestamp,
            )
            self._current_value[primary_key] = new_value
        else:
            self._current_value.pop(primary_key, None)

    # ------------------------------------------------------------------
    # Queries answered from the secondary tree alone (section 3.6)
    # ------------------------------------------------------------------
    def primary_keys_with_value(
        self, value: Key, as_of: Optional[int] = None
    ) -> List[Key]:
        """Primary keys whose attribute equals ``value`` at ``as_of`` (default now)."""
        low = encode_component(value) + "\x00"
        high = encode_component(value) + "\x01"
        versions = self.tree.range_search(low, high, as_of=as_of)
        keys = []
        for version in versions:
            _secondary, primary = split_composite_key(version.key)
            keys.append(primary)
        return keys

    def count_with_value(self, value: Key, as_of: Optional[int] = None) -> int:
        """How many records carried ``value`` at ``as_of`` — no primary access needed."""
        return len(self.primary_keys_with_value(value, as_of=as_of))

    def value_history(self, primary_key: Key) -> List[Tuple[int, Optional[Key]]]:
        """The attribute-value history of one primary key, as (timestamp, value) steps."""
        events: List[Tuple[int, Optional[Key]]] = []
        region_versions = []
        for value_key in self._all_composite_keys_for(primary_key):
            region_versions.extend(self.tree.key_history(value_key))
        for version in region_versions:
            secondary, _primary = split_composite_key(version.key)
            events.append(
                (version.timestamp, None if version.is_tombstone else secondary)
            )
        # An attribute *change* writes two entries with one timestamp: the
        # tombstone closing the old association and the insert opening the
        # new one.  Sorted by timestamp alone their order is whatever the
        # per-key traversal produced, and a (ts, None) landing after the
        # (ts, new-value) step misreports the change as a deletion.  The
        # tombstone must sort first so the last event at each timestamp is
        # the value that actually held from then on.
        events.sort(key=lambda item: (item[0], 0 if item[1] is None else 1))
        return events

    def lookup(
        self, primary_tree: TSBTree, value: Key, as_of: Optional[int] = None
    ):
        """Fetch the primary versions carrying ``value`` at ``as_of``.

        This is the two-step lookup of section 3.6: the secondary tree yields
        (timestamp, primary key) pairs, which are then resolved against the
        primary TSB-tree.
        """
        timestamp = primary_tree.now if as_of is None else as_of
        results = []
        for primary_key in self.primary_keys_with_value(value, as_of=as_of):
            version = primary_tree.search_as_of(primary_key, timestamp)
            if version is not None:
                results.append(version)
        return results

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _all_composite_keys_for(self, primary_key: Key) -> List[str]:
        suffix = "\x00" + encode_component(primary_key)
        keys = set()
        for node in self.tree.data_nodes():
            for version in node.versions:
                if isinstance(version.key, str) and version.key.endswith(suffix):
                    keys.add(version.key)
        return sorted(keys)

    @staticmethod
    def _encode_primary(primary_key: Key) -> bytes:
        return encode_component(primary_key).encode("utf-8")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SecondaryIndex(attribute={self.attribute!r})"
