"""TSB-tree nodes: data nodes, index entries and index nodes.

Every node is responsible for a rectangle of the key x time plane
(:class:`~repro.core.records.Rectangle`):

* A **data node** holds record versions.  Its rectangle is the set of
  ``(key, time)`` query points it must be able to answer; because versions
  created *before* the rectangle's start time may still be valid inside it
  (the redundancy introduced by the time-split rule), the node may contain
  versions whose timestamps precede its time range.
* An **index node** holds :class:`IndexEntry` values, each describing the
  rectangle and device address of one child.  Within a parent's rectangle the
  children's rectangles tile the space: every query point is covered by
  exactly one child entry.

Unlike the original WOBT — which keeps entries strictly in insertion order
because a write-once sector can never be rewritten — TSB-tree nodes live on
an erasable device while current, so we are free to store them in a
convenient normalised form.  The WOBT baseline in :mod:`repro.wobt` keeps the
literal insertion-ordered layout.

The module also contains the byte-accurate page codecs used when a node image
is written to either device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.records import (
    KeyRange,
    Rectangle,
    RecordError,
    TimeRange,
    Version,
    group_by_key,
    latest_committed,
    version_as_of,
)
from repro.storage.device import Address
from repro.storage.serialization import (
    ByteReader,
    ByteWriter,
    Key,
    SerializationError,
    address_size,
    key_size,
    read_address,
    read_key,
    read_timestamp,
    read_value,
    write_address,
    write_key,
    write_timestamp,
    write_value,
)

_NODE_TAG_DATA = 0xD1
_NODE_TAG_INDEX = 0xD2

#: fixed per-node header charge (tag, counts, range bounds bookkeeping)
_NODE_HEADER_SIZE = 32
#: fixed per-index-entry overhead besides key/address payload
_INDEX_ENTRY_OVERHEAD = 20


class NodeError(Exception):
    """Raised on structurally invalid node operations."""


# ----------------------------------------------------------------------
# Bound encoding helpers (None == +/- infinity / "still current")
# ----------------------------------------------------------------------
def _write_optional_key(writer: ByteWriter, key: Optional[Key]) -> None:
    if key is None:
        writer.put_u8(0)
    else:
        writer.put_u8(1)
        write_key(writer, key)


def _read_optional_key(reader: ByteReader) -> Optional[Key]:
    if reader.get_u8() == 0:
        return None
    return read_key(reader)


def _write_optional_time(writer: ByteWriter, timestamp: Optional[int]) -> None:
    if timestamp is None:
        writer.put_u8(0)
    else:
        writer.put_u8(1)
        writer.put_u64(timestamp)


def _read_optional_time(reader: ByteReader) -> Optional[int]:
    if reader.get_u8() == 0:
        return None
    return reader.get_u64()


def _write_rectangle(writer: ByteWriter, rect: Rectangle) -> None:
    _write_optional_key(writer, rect.keys.low)
    _write_optional_key(writer, rect.keys.high)
    writer.put_u64(rect.times.start)
    _write_optional_time(writer, rect.times.end)


def _read_rectangle(reader: ByteReader) -> Rectangle:
    low = _read_optional_key(reader)
    high = _read_optional_key(reader)
    start = reader.get_u64()
    end = _read_optional_time(reader)
    return Rectangle(KeyRange(low, high), TimeRange(start, end))


# ----------------------------------------------------------------------
# Data nodes
# ----------------------------------------------------------------------
@dataclass
class DataNode:
    """A leaf node holding record versions for one key x time rectangle."""

    address: Address
    region: Rectangle
    versions: List[Version] = field(default_factory=list)

    # -- content queries -------------------------------------------------
    def versions_for_key(self, key: Key) -> List[Version]:
        """All versions of ``key`` stored in this node, oldest first."""
        matching = [version for version in self.versions if version.key == key]
        matching.sort(key=_stable_version_order)
        return matching

    def latest_for_key(self, key: Key) -> Optional[Version]:
        return latest_committed(self.versions_for_key(key))

    def version_as_of(self, key: Key, timestamp: int) -> Optional[Version]:
        return version_as_of(self.versions_for_key(key), timestamp)

    def provisional_for_key(self, key: Key, txn_id: int) -> Optional[Version]:
        for version in reversed(self.versions):
            if version.key == key and version.txn_id == txn_id:
                return version
        return None

    def distinct_key_count(self) -> int:
        return len({version.key for version in self.versions})

    def committed_timestamps(self) -> List[int]:
        """Sorted distinct commit timestamps present in the node."""
        return sorted(
            {v.timestamp for v in self.versions if v.timestamp is not None}
        )

    def current_version_count(self) -> int:
        """Number of versions that are the latest for their key (or provisional)."""
        count = 0
        for _key, group in group_by_key(self.versions).items():
            latest = latest_committed(group)
            for version in group:
                if version.is_provisional or version is latest:
                    count += 1
        return count

    def historical_version_count(self) -> int:
        """Number of committed versions superseded by a newer committed one."""
        return len(self.versions) - self.current_version_count()

    # -- mutation ---------------------------------------------------------
    def add_version(self, version: Version) -> None:
        if not self.region.keys.contains(version.key):
            raise NodeError(
                f"key {version.key!r} outside node key range {self.region.keys}"
            )
        self.versions.append(version)

    def remove_version(self, version: Version) -> None:
        try:
            self.versions.remove(version)
        except ValueError as exc:  # pragma: no cover - defensive
            raise NodeError(f"version {version} not present in node") from exc

    # -- sizing -----------------------------------------------------------
    def serialized_size(self) -> int:
        return _NODE_HEADER_SIZE + self.region_size() + sum(
            version.serialized_size() for version in self.versions
        )

    def region_size(self) -> int:
        return (
            2
            + (0 if self.region.keys.low is None else key_size(self.region.keys.low))
            + (0 if self.region.keys.high is None else key_size(self.region.keys.high))
            + 8
            + 9
        )

    def fits(self, page_size: int, extra: Optional[Version] = None) -> bool:
        size = self.serialized_size()
        if extra is not None:
            size += extra.serialized_size()
        return size <= page_size

    # -- serialization ----------------------------------------------------
    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.put_u8(_NODE_TAG_DATA)
        _write_rectangle(writer, self.region)
        writer.put_u32(len(self.versions))
        for version in self.versions:
            write_key(writer, version.key)
            write_timestamp(writer, version.timestamp)
            flags = 1 if version.is_tombstone else 0
            if version.txn_id is not None:
                flags |= 2
            writer.put_u8(flags)
            if version.txn_id is not None:
                writer.put_u64(version.txn_id)
            write_value(writer, version.value)
        return writer.getvalue()

    @staticmethod
    def decode(address: Address, data: bytes) -> "DataNode":
        reader = ByteReader(data)
        tag = reader.get_u8()
        if tag != _NODE_TAG_DATA:
            raise SerializationError(f"not a data-node image (tag {tag:#x})")
        region = _read_rectangle(reader)
        count = reader.get_u32()
        versions: List[Version] = []
        for _ in range(count):
            key = read_key(reader)
            timestamp = read_timestamp(reader)
            flags = reader.get_u8()
            txn_id = reader.get_u64() if flags & 2 else None
            value = read_value(reader)
            versions.append(
                Version(
                    key=key,
                    timestamp=timestamp,
                    value=value,
                    txn_id=txn_id,
                    is_tombstone=bool(flags & 1),
                )
            )
        return DataNode(address=address, region=region, versions=versions)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataNode({self.address}, {self.region}, {len(self.versions)} versions)"


# ----------------------------------------------------------------------
# Index entries and index nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexEntry:
    """One child reference inside an index node.

    The paper stores ``(key, timestamp, pointer)`` triples in insertion order
    and reconstructs each child's key/time extent from the node's history; we
    store the extent explicitly as a rectangle, which is the information the
    search rule derives (see DESIGN.md section 5).  ``child`` carries the
    device tier, so "does this entry reference the historical database?" is
    simply :attr:`is_historical`.
    """

    child: Address
    region: Rectangle

    @property
    def is_historical(self) -> bool:
        return self.child.is_historical

    @property
    def is_current(self) -> bool:
        return self.child.is_magnetic

    def serialized_size(self) -> int:
        key_bytes = 0
        if self.region.keys.low is not None:
            key_bytes += key_size(self.region.keys.low)
        if self.region.keys.high is not None:
            key_bytes += key_size(self.region.keys.high)
        return _INDEX_ENTRY_OVERHEAD + key_bytes + address_size(self.child)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexEntry({self.region} -> {self.child})"


@dataclass
class IndexNode:
    """An internal node mapping key x time rectangles to child addresses."""

    address: Address
    region: Rectangle
    entries: List[IndexEntry] = field(default_factory=list)
    level: int = 1

    # -- search -----------------------------------------------------------
    def find_child(self, key: Key, timestamp: int) -> IndexEntry:
        """Return the unique entry whose rectangle contains ``(key, timestamp)``.

        This is the rectangle formulation of the paper's search rule
        (section 2.2 / 2.5): ignore entries with timestamps after the search
        time, take the largest key not exceeding the search key, then the
        latest such entry.
        """
        matches = [
            entry
            for entry in self.entries
            if entry.region.contains_point(key, timestamp)
        ]
        if not matches:
            raise NodeError(
                f"no child covers ({key!r}, {timestamp}) in index node {self.address}"
            )
        if len(matches) > 1:
            raise NodeError(
                f"{len(matches)} children cover ({key!r}, {timestamp}) in index "
                f"node {self.address}: regions overlap"
            )
        return matches[0]

    def children_overlapping(self, region: Rectangle) -> List[IndexEntry]:
        """All entries whose rectangle intersects ``region`` (for range scans)."""
        return [entry for entry in self.entries if entry.region.overlaps(region)]

    def entry_for_child(self, child: Address) -> IndexEntry:
        for entry in self.entries:
            if entry.child == child:
                return entry
        raise NodeError(f"index node {self.address} has no entry for child {child}")

    # -- mutation ----------------------------------------------------------
    def replace_entry(self, old: IndexEntry, new_entries: Sequence[IndexEntry]) -> None:
        """Replace one child entry by the entries produced by its split."""
        try:
            position = self.entries.index(old)
        except ValueError as exc:
            raise NodeError(f"entry {old} not present in index node") from exc
        self.entries[position : position + 1] = list(new_entries)

    def add_entry(self, entry: IndexEntry) -> None:
        self.entries.append(entry)

    # -- classification ----------------------------------------------------
    def current_entries(self) -> List[IndexEntry]:
        return [entry for entry in self.entries if entry.is_current]

    def historical_entries(self) -> List[IndexEntry]:
        return [entry for entry in self.entries if entry.is_historical]

    # -- sizing --------------------------------------------------------------
    def serialized_size(self) -> int:
        return _NODE_HEADER_SIZE + sum(
            entry.serialized_size() for entry in self.entries
        )

    def fits(self, page_size: int, extra_entries: int = 0) -> bool:
        """Whether the node (plus ``extra_entries`` typical entries) fits a page."""
        size = self.serialized_size()
        if extra_entries and self.entries:
            size += extra_entries * max(entry.serialized_size() for entry in self.entries)
        elif extra_entries:
            size += extra_entries * (_INDEX_ENTRY_OVERHEAD + 32)
        return size <= page_size

    # -- serialization -------------------------------------------------------
    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.put_u8(_NODE_TAG_INDEX)
        writer.put_u32(self.level)
        _write_rectangle(writer, self.region)
        writer.put_u32(len(self.entries))
        for entry in self.entries:
            _write_rectangle(writer, entry.region)
            write_address(writer, entry.child)
        return writer.getvalue()

    @staticmethod
    def decode(address: Address, data: bytes) -> "IndexNode":
        reader = ByteReader(data)
        tag = reader.get_u8()
        if tag != _NODE_TAG_INDEX:
            raise SerializationError(f"not an index-node image (tag {tag:#x})")
        level = reader.get_u32()
        region = _read_rectangle(reader)
        count = reader.get_u32()
        entries: List[IndexEntry] = []
        for _ in range(count):
            entry_region = _read_rectangle(reader)
            child = read_address(reader)
            entries.append(IndexEntry(child=child, region=entry_region))
        return IndexNode(address=address, region=region, entries=entries, level=level)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexNode({self.address}, {self.region}, level={self.level}, "
            f"{len(self.entries)} entries)"
        )


# ----------------------------------------------------------------------
# Node image dispatch
# ----------------------------------------------------------------------
def decode_node(address: Address, data: bytes):
    """Decode a page image into a :class:`DataNode` or :class:`IndexNode`."""
    if not data:
        raise SerializationError("empty page image")
    tag = data[0]
    if tag == _NODE_TAG_DATA:
        return DataNode.decode(address, data)
    if tag == _NODE_TAG_INDEX:
        return IndexNode.decode(address, data)
    raise SerializationError(f"unknown node tag {tag:#x}")


def is_data_node_image(data: bytes) -> bool:
    return bool(data) and data[0] == _NODE_TAG_DATA


def _stable_version_order(version: Version) -> Tuple[int, int]:
    if version.timestamp is None:
        return (1, version.txn_id or 0)
    return (0, version.timestamp)
