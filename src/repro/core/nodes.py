"""TSB-tree nodes: data nodes, index entries and index nodes.

Every node is responsible for a rectangle of the key x time plane
(:class:`~repro.core.records.Rectangle`):

* A **data node** holds record versions.  Its rectangle is the set of
  ``(key, time)`` query points it must be able to answer; because versions
  created *before* the rectangle's start time may still be valid inside it
  (the redundancy introduced by the time-split rule), the node may contain
  versions whose timestamps precede its time range.
* An **index node** holds :class:`IndexEntry` values, each describing the
  rectangle and device address of one child.  Within a parent's rectangle the
  children's rectangles tile the space: every query point is covered by
  exactly one child entry.

Unlike the original WOBT — which keeps entries strictly in insertion order
because a write-once sector can never be rewritten — TSB-tree nodes live on
an erasable device while current, so we are free to store them in a
convenient normalised form.  The WOBT baseline in :mod:`repro.wobt` keeps the
literal insertion-ordered layout.

The module also contains the byte-accurate page codecs used when a node image
is written to either device.

Hot-path design: both node kinds keep *lazy derived structures* next to
their authoritative lists — a per-key version index and a cached content
size on data nodes, sorted low-key entry tables on index nodes — so point
queries and descents are dictionary/bisect lookups instead of linear scans,
and sizing a node for the split test no longer re-serialises every record.
The caches are maintained incrementally by the mutator methods and
invalidated wholesale when the backing list itself is reassigned (what the
split code does), which a ``__setattr__`` hook catches.
"""

from __future__ import annotations

import struct
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.records import (
    KeyRange,
    Rectangle,
    RecordError,
    TimeRange,
    Version,
    decoded_rectangle,
    decoded_version,
    group_by_key,
    latest_committed,
    version_as_of,
)
from repro.storage.device import Address
from repro.storage.serialization import (
    ByteReader,
    ByteWriter,
    Key,
    SerializationError,
    address_size,
    encode_str_key,
    decode_str_key,
    key_size,
    read_address,
    read_key,
    read_timestamp,
    read_value,
    write_address,
    write_key,
    write_timestamp,
    write_value,
)

_NODE_TAG_DATA = 0xD1
_NODE_TAG_INDEX = 0xD2

#: fixed per-node header charge (tag, counts, range bounds bookkeeping)
_NODE_HEADER_SIZE = 32
#: fixed per-index-entry overhead besides key/address payload
_INDEX_ENTRY_OVERHEAD = 20

_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_U32 = struct.Struct(">I")


class NodeError(Exception):
    """Raised on structurally invalid node operations."""


# ----------------------------------------------------------------------
# Bound encoding helpers (None == +/- infinity / "still current")
# ----------------------------------------------------------------------
def _write_optional_key(writer: ByteWriter, key: Optional[Key]) -> None:
    if key is None:
        writer.put_u8(0)
    else:
        writer.put_u8(1)
        write_key(writer, key)


def _read_optional_key(reader: ByteReader) -> Optional[Key]:
    if reader.get_u8() == 0:
        return None
    return read_key(reader)


def _write_optional_time(writer: ByteWriter, timestamp: Optional[int]) -> None:
    if timestamp is None:
        writer.put_u8(0)
    else:
        writer.put_u8(1)
        writer.put_u64(timestamp)


def _read_optional_time(reader: ByteReader) -> Optional[int]:
    if reader.get_u8() == 0:
        return None
    return reader.get_u64()


def _write_rectangle(writer: ByteWriter, rect: Rectangle) -> None:
    _write_optional_key(writer, rect.keys.low)
    _write_optional_key(writer, rect.keys.high)
    writer.put_u64(rect.times.start)
    _write_optional_time(writer, rect.times.end)


def _read_rectangle(reader: ByteReader) -> Rectangle:
    low = _read_optional_key(reader)
    high = _read_optional_key(reader)
    start = reader.get_u64()
    end = _read_optional_time(reader)
    return Rectangle(KeyRange(low, high), TimeRange(start, end))


# ----------------------------------------------------------------------
# Zero-intermediary codec helpers: the fast encode/decode paths below
# append straight into one bytearray / read with struct.unpack_from and a
# running offset, producing byte-identical images to the ByteWriter /
# ByteReader layout (which stays authoritative for every other page kind).
# ----------------------------------------------------------------------
def _append_key(buf: bytearray, key: Key) -> None:
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise SerializationError(f"unsupported key type: {type(key).__name__}")
    if isinstance(key, int):
        buf.append(0)  # _TAG_INT_KEY
        buf += _I64.pack(key)
    else:
        encoded = encode_str_key(key)
        buf.append(1)  # _TAG_STR_KEY
        buf += _U32.pack(len(encoded))
        buf += encoded


def _key_at(data: bytes, offset: int) -> Tuple[Key, int]:
    tag = data[offset]
    offset += 1
    if tag == 0:
        (key,) = _I64.unpack_from(data, offset)
        return key, offset + 8
    if tag == 1:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        end = offset + length
        if end > len(data):
            raise SerializationError("truncated page image")
        return decode_str_key(bytes(data[offset:end])), end
    raise SerializationError(f"unknown key tag {tag}")


def _append_rectangle(buf: bytearray, rect: Rectangle) -> None:
    low, high = rect.keys.low, rect.keys.high
    if low is None:
        buf.append(0)
    else:
        buf.append(1)
        _append_key(buf, low)
    if high is None:
        buf.append(0)
    else:
        buf.append(1)
        _append_key(buf, high)
    times = rect.times
    buf += _U64.pack(times.start)
    if times.end is None:
        buf.append(0)
    else:
        buf.append(1)
        buf += _U64.pack(times.end)


def _rectangle_at(data: bytes, offset: int) -> Tuple[Rectangle, int]:
    low: Optional[Key] = None
    high: Optional[Key] = None
    if data[offset]:
        low, offset = _key_at(data, offset + 1)
    else:
        offset += 1
    if data[offset]:
        high, offset = _key_at(data, offset + 1)
    else:
        offset += 1
    (start,) = _U64.unpack_from(data, offset)
    offset += 8
    end: Optional[int] = None
    if data[offset]:
        (end,) = _U64.unpack_from(data, offset + 1)
        offset += 9
    else:
        offset += 1
    return decoded_rectangle(low, high, start, end), offset


def _append_address(buf: bytearray, address: Address) -> None:
    if address.is_magnetic:
        buf.append(0)  # _TAG_ADDR_MAGNETIC
        buf += _U64.pack(address.page_id)
    else:
        buf.append(1)  # _TAG_ADDR_HISTORICAL
        buf += _U64.pack(address.page_id)
        buf += _U64.pack(address.sector_start or 0)
        buf += _U64.pack(address.length or 0)
        buf += _U32.pack(address.platter or 0)


def _address_at(data: bytes, offset: int) -> Tuple[Address, int]:
    tag = data[offset]
    offset += 1
    if tag == 0:
        (page_id,) = _U64.unpack_from(data, offset)
        return Address.magnetic(page_id), offset + 8
    if tag == 1:
        (region_id,) = _U64.unpack_from(data, offset)
        (sector_start,) = _U64.unpack_from(data, offset + 8)
        (length,) = _U64.unpack_from(data, offset + 16)
        (platter,) = _U32.unpack_from(data, offset + 24)
        return Address.historical(region_id, sector_start, length, platter), offset + 28
    raise SerializationError(f"unknown address tag {tag}")


def _entry_sort_key(entry: "IndexEntry") -> Tuple:
    """Sort key ordering entries by key-range low bound (None first)."""
    low = entry.region.keys.low
    return (0,) if low is None else (1, low)


# ----------------------------------------------------------------------
# Data nodes
# ----------------------------------------------------------------------
@dataclass
class DataNode:
    """A leaf node holding record versions for one key x time rectangle."""

    address: Address
    region: Rectangle
    versions: List[Version] = field(default_factory=list)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name == "versions":
            # The split code swaps the whole list out; derived structures
            # are rebuilt lazily on the next query.
            object.__setattr__(self, "_by_key", None)
            object.__setattr__(self, "_content_size", None)
            object.__setattr__(self, "_known_len", len(value))

    def _sync_caches(self) -> None:
        # The mutator methods keep the caches current; direct list surgery
        # (tests corrupting a node on purpose, ad-hoc tooling) is detected
        # by the length changing under us and invalidates everything.
        if self._known_len != len(self.versions):
            object.__setattr__(self, "_by_key", None)
            object.__setattr__(self, "_content_size", None)
            object.__setattr__(self, "_known_len", len(self.versions))

    # -- derived structures -----------------------------------------------
    def _index(self) -> Dict[Key, List[Version]]:
        """Per-key version lists, each sorted oldest-first (lazy, cached)."""
        self._sync_caches()
        index = self._by_key
        if index is None:
            index = {}
            for version in self.versions:
                index.setdefault(version.key, []).append(version)
            for group in index.values():
                group.sort(key=_stable_version_order)
            object.__setattr__(self, "_by_key", index)
        return index

    def keys(self) -> List[Key]:
        """The distinct keys stored in this node (unsorted)."""
        return list(self._index())

    # -- content queries -------------------------------------------------
    def versions_for_key(self, key: Key) -> List[Version]:
        """All versions of ``key`` stored in this node, oldest first."""
        group = self._index().get(key)
        return list(group) if group else []

    def latest_for_key(self, key: Key) -> Optional[Version]:
        group = self._index().get(key)
        return latest_committed(group) if group else None

    def version_as_of(self, key: Key, timestamp: int) -> Optional[Version]:
        group = self._index().get(key)
        return version_as_of(group, timestamp) if group else None

    def provisional_for_key(self, key: Key, txn_id: int) -> Optional[Version]:
        group = self._index().get(key)
        if not group:
            return None
        for version in reversed(group):
            if version.txn_id == txn_id:
                return version
        return None

    def distinct_key_count(self) -> int:
        return len(self._index())

    def committed_timestamps(self) -> List[int]:
        """Sorted distinct commit timestamps present in the node."""
        return sorted(
            {v.timestamp for v in self.versions if v.timestamp is not None}
        )

    def current_version_count(self) -> int:
        """Number of versions that are the latest for their key (or provisional)."""
        count = 0
        for _key, group in group_by_key(self.versions).items():
            latest = latest_committed(group)
            for version in group:
                if version.is_provisional or version is latest:
                    count += 1
        return count

    def historical_version_count(self) -> int:
        """Number of committed versions superseded by a newer committed one."""
        return len(self.versions) - self.current_version_count()

    # -- mutation ---------------------------------------------------------
    def add_version(self, version: Version) -> None:
        if not self.region.keys.contains(version.key):
            raise NodeError(
                f"key {version.key!r} outside node key range {self.region.keys}"
            )
        self._sync_caches()
        self.versions.append(version)
        object.__setattr__(self, "_known_len", self._known_len + 1)
        index = self._by_key
        if index is not None:
            insort(
                index.setdefault(version.key, []),
                version,
                key=_stable_version_order,
            )
        if self._content_size is not None:
            object.__setattr__(
                self, "_content_size", self._content_size + version.serialized_size()
            )

    def remove_version(self, version: Version) -> None:
        self._sync_caches()
        try:
            self.versions.remove(version)
        except ValueError as exc:  # pragma: no cover - defensive
            raise NodeError(f"version {version} not present in node") from exc
        object.__setattr__(self, "_known_len", self._known_len - 1)
        index = self._by_key
        if index is not None:
            group = index.get(version.key)
            if group is not None:
                try:
                    group.remove(version)
                except ValueError:  # pragma: no cover - defensive
                    object.__setattr__(self, "_by_key", None)
                else:
                    if not group:
                        del index[version.key]
        if self._content_size is not None:
            object.__setattr__(
                self, "_content_size", self._content_size - version.serialized_size()
            )

    # -- sizing -----------------------------------------------------------
    def serialized_size(self) -> int:
        self._sync_caches()
        content = self._content_size
        if content is None:
            content = sum(version.serialized_size() for version in self.versions)
            object.__setattr__(self, "_content_size", content)
        return _NODE_HEADER_SIZE + self.region_size() + content

    def region_size(self) -> int:
        return (
            2
            + (0 if self.region.keys.low is None else key_size(self.region.keys.low))
            + (0 if self.region.keys.high is None else key_size(self.region.keys.high))
            + 8
            + 9
        )

    def fits(self, page_size: int, extra: Optional[Version] = None) -> bool:
        size = self.serialized_size()
        if extra is not None:
            size += extra.serialized_size()
        return size <= page_size

    # -- serialization ----------------------------------------------------
    def encode(self) -> bytes:
        buf = bytearray()
        buf.append(_NODE_TAG_DATA)
        _append_rectangle(buf, self.region)
        buf += _U32.pack(len(self.versions))
        for version in self.versions:
            _append_key(buf, version.key)
            timestamp = version.timestamp
            if timestamp is None:
                buf.append(0)
            else:
                buf.append(1)
                buf += _U64.pack(timestamp)
            txn_id = version.txn_id
            flags = 1 if version.is_tombstone else 0
            if txn_id is not None:
                flags |= 2
            buf.append(flags)
            if txn_id is not None:
                buf += _U64.pack(txn_id)
            value = version.value
            buf += _U32.pack(len(value))
            buf += value
        return bytes(buf)

    @staticmethod
    def decode(address: Address, data: bytes) -> "DataNode":
        try:
            if data[0] != _NODE_TAG_DATA:
                raise SerializationError(f"not a data-node image (tag {data[0]:#x})")
            region, offset = _rectangle_at(data, 1)
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
            length = len(data)
            versions: List[Version] = []
            append = versions.append
            for _ in range(count):
                key, offset = _key_at(data, offset)
                tag = data[offset]
                offset += 1
                if tag == 0:
                    timestamp = None
                elif tag == 1:
                    (timestamp,) = _U64.unpack_from(data, offset)
                    offset += 8
                else:
                    raise SerializationError(f"unknown timestamp tag {tag}")
                flags = data[offset]
                offset += 1
                if flags & 2:
                    (txn_id,) = _U64.unpack_from(data, offset)
                    offset += 8
                else:
                    txn_id = None
                (value_length,) = _U32.unpack_from(data, offset)
                offset += 4
                end = offset + value_length
                if end > length:
                    raise SerializationError("truncated page image")
                value = bytes(data[offset:end])
                offset = end
                append(
                    decoded_version(key, timestamp, value, txn_id, bool(flags & 1))
                )
        except (struct.error, IndexError) as exc:
            raise SerializationError("truncated page image") from exc
        return DataNode(address=address, region=region, versions=versions)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataNode({self.address}, {self.region}, {len(self.versions)} versions)"


# ----------------------------------------------------------------------
# Index entries and index nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexEntry:
    """One child reference inside an index node.

    The paper stores ``(key, timestamp, pointer)`` triples in insertion order
    and reconstructs each child's key/time extent from the node's history; we
    store the extent explicitly as a rectangle, which is the information the
    search rule derives (see DESIGN.md section 5).  ``child`` carries the
    device tier, so "does this entry reference the historical database?" is
    simply :attr:`is_historical`.
    """

    child: Address
    region: Rectangle

    @property
    def is_historical(self) -> bool:
        return self.child.is_historical

    @property
    def is_current(self) -> bool:
        return self.child.is_magnetic

    def serialized_size(self) -> int:
        # Entries are immutable; the size is computed once and memoized.
        cached = self.__dict__.get("_cached_size")
        if cached is not None:
            return cached
        key_bytes = 0
        if self.region.keys.low is not None:
            key_bytes += key_size(self.region.keys.low)
        if self.region.keys.high is not None:
            key_bytes += key_size(self.region.keys.high)
        size = _INDEX_ENTRY_OVERHEAD + key_bytes + address_size(self.child)
        object.__setattr__(self, "_cached_size", size)
        return size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexEntry({self.region} -> {self.child})"


@dataclass
class IndexNode:
    """An internal node mapping key x time rectangles to child addresses."""

    address: Address
    region: Rectangle
    entries: List[IndexEntry] = field(default_factory=list)
    level: int = 1

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name == "entries":
            self._invalidate()

    def _invalidate(self) -> None:
        object.__setattr__(self, "_by_low", None)
        object.__setattr__(self, "_current_by_low", None)
        object.__setattr__(self, "_content_size", None)
        object.__setattr__(self, "_known_len", len(self.entries))

    def _sync_caches(self) -> None:
        # Detect direct list surgery on `entries` (see DataNode._sync_caches).
        if self._known_len != len(self.entries):
            self._invalidate()

    def _low_table(self) -> Tuple[List[Tuple], List[IndexEntry]]:
        """All entries sorted by key-range low bound, with parallel sort keys."""
        self._sync_caches()
        table = self._by_low
        if table is None:
            ordered = sorted(self.entries, key=_entry_sort_key)
            table = ([_entry_sort_key(entry) for entry in ordered], ordered)
            object.__setattr__(self, "_by_low", table)
        return table

    def _current_low_table(self) -> Tuple[List[Tuple], List[IndexEntry]]:
        """Current (open-ended time) entries sorted by key-range low bound."""
        self._sync_caches()
        table = self._current_by_low
        if table is None:
            ordered = sorted(
                (
                    entry
                    for entry in self.entries
                    if entry.region.times.is_current
                ),
                key=_entry_sort_key,
            )
            table = ([_entry_sort_key(entry) for entry in ordered], ordered)
            object.__setattr__(self, "_current_by_low", table)
        return table

    # -- search -----------------------------------------------------------
    def find_child(self, key: Key, timestamp: int) -> IndexEntry:
        """Return the unique entry whose rectangle contains ``(key, timestamp)``.

        This is the rectangle formulation of the paper's search rule
        (section 2.2 / 2.5): ignore entries with timestamps after the search
        time, take the largest key not exceeding the search key, then the
        latest such entry.  An entry whose low bound exceeds the search key
        can never match, so only the bisected prefix of the low-sorted entry
        table is inspected.
        """
        lows, ordered = self._low_table()
        limit = bisect_right(lows, (1, key))
        matches = [
            entry
            for entry in ordered[:limit]
            if entry.region.contains_point(key, timestamp)
        ]
        if not matches:
            raise NodeError(
                f"no child covers ({key!r}, {timestamp}) in index node {self.address}"
            )
        if len(matches) > 1:
            raise NodeError(
                f"{len(matches)} children cover ({key!r}, {timestamp}) in index "
                f"node {self.address}: regions overlap"
            )
        return matches[0]

    def find_current_child(self, key: Key) -> IndexEntry:
        """The unique *current* child whose key range contains ``key``.

        The current children tile the key space, so the answer is the
        current entry with the greatest low bound not exceeding ``key`` —
        one bisect on the low-sorted current-entry table.  The neighbouring
        entries are checked for double coverage so an overlapping (corrupt)
        tiling still fails loudly, as the old exhaustive scan did.
        """
        lows, ordered = self._current_low_table()
        position = bisect_right(lows, (1, key)) - 1
        if position >= 0:
            entry = ordered[position]
            if entry.region.keys.contains(key):
                overlap = (
                    position + 1 < len(ordered)
                    and ordered[position + 1].region.keys.contains(key)
                ) or (
                    position > 0
                    and ordered[position - 1].region.keys.contains(key)
                )
                if not overlap:
                    return entry
        matches = sum(
            1
            for candidate in self.entries
            if candidate.region.times.is_current
            and candidate.region.keys.contains(key)
        )
        raise NodeError(
            f"expected exactly one current child for key {key!r} in "
            f"{self.address}, found {matches}"
        )

    def children_overlapping(self, region: Rectangle) -> List[IndexEntry]:
        """All entries whose rectangle intersects ``region`` (for range scans)."""
        return [entry for entry in self.entries if entry.region.overlaps(region)]

    def entry_for_child(self, child: Address) -> IndexEntry:
        for entry in self.entries:
            if entry.child == child:
                return entry
        raise NodeError(f"index node {self.address} has no entry for child {child}")

    # -- mutation ----------------------------------------------------------
    def replace_entry(self, old: IndexEntry, new_entries: Sequence[IndexEntry]) -> None:
        """Replace one child entry by the entries produced by its split."""
        try:
            position = self.entries.index(old)
        except ValueError as exc:
            raise NodeError(f"entry {old} not present in index node") from exc
        self.entries[position : position + 1] = list(new_entries)
        self._invalidate()

    def add_entry(self, entry: IndexEntry) -> None:
        self.entries.append(entry)
        self._invalidate()

    # -- classification ----------------------------------------------------
    def current_entries(self) -> List[IndexEntry]:
        return [entry for entry in self.entries if entry.is_current]

    def historical_entries(self) -> List[IndexEntry]:
        return [entry for entry in self.entries if entry.is_historical]

    # -- sizing --------------------------------------------------------------
    def serialized_size(self) -> int:
        self._sync_caches()
        content = self._content_size
        if content is None:
            content = sum(entry.serialized_size() for entry in self.entries)
            object.__setattr__(self, "_content_size", content)
        return _NODE_HEADER_SIZE + content

    def fits(self, page_size: int, extra_entries: int = 0) -> bool:
        """Whether the node (plus ``extra_entries`` typical entries) fits a page."""
        size = self.serialized_size()
        if extra_entries and self.entries:
            size += extra_entries * max(entry.serialized_size() for entry in self.entries)
        elif extra_entries:
            size += extra_entries * (_INDEX_ENTRY_OVERHEAD + 32)
        return size <= page_size

    # -- serialization -------------------------------------------------------
    def encode(self) -> bytes:
        buf = bytearray()
        buf.append(_NODE_TAG_INDEX)
        buf += _U32.pack(self.level)
        _append_rectangle(buf, self.region)
        buf += _U32.pack(len(self.entries))
        for entry in self.entries:
            _append_rectangle(buf, entry.region)
            _append_address(buf, entry.child)
        return bytes(buf)

    @staticmethod
    def decode(address: Address, data: bytes) -> "IndexNode":
        try:
            if data[0] != _NODE_TAG_INDEX:
                raise SerializationError(f"not an index-node image (tag {data[0]:#x})")
            (level,) = _U32.unpack_from(data, 1)
            region, offset = _rectangle_at(data, 5)
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
            entries: List[IndexEntry] = []
            append = entries.append
            for _ in range(count):
                entry_region, offset = _rectangle_at(data, offset)
                child, offset = _address_at(data, offset)
                append(IndexEntry(child=child, region=entry_region))
        except (struct.error, IndexError) as exc:
            raise SerializationError("truncated page image") from exc
        return IndexNode(address=address, region=region, entries=entries, level=level)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexNode({self.address}, {self.region}, level={self.level}, "
            f"{len(self.entries)} entries)"
        )


# ----------------------------------------------------------------------
# Node image dispatch
# ----------------------------------------------------------------------
def decode_node(address: Address, data: bytes):
    """Decode a page image into a :class:`DataNode` or :class:`IndexNode`."""
    if not data:
        raise SerializationError("empty page image")
    tag = data[0]
    if tag == _NODE_TAG_DATA:
        return DataNode.decode(address, data)
    if tag == _NODE_TAG_INDEX:
        return IndexNode.decode(address, data)
    raise SerializationError(f"unknown node tag {tag:#x}")


def is_data_node_image(data: bytes) -> bool:
    return bool(data) and data[0] == _NODE_TAG_DATA


def _stable_version_order(version: Version) -> Tuple[int, int]:
    if version.timestamp is None:
        return (1, version.txn_id or 0)
    return (0, version.timestamp)
