"""Structural-invariant checker for TSB-trees.

The checker asserts every structural property the paper states or implies.
It is used heavily by the unit, integration and property-based tests:
after any sequence of operations, ``check_tree(tree)`` must return an empty
violation list.

Checked invariants
------------------
1.  **Tiling** — inside every index node, the children's regions (clipped to
    the node's own region) are pairwise disjoint and cover the node's region
    completely: every (key, time) query point is the responsibility of
    exactly one child.
2.  **Tier discipline** — current nodes live on the magnetic device, entries
    with open time ranges point at magnetic addresses and entries with
    closed time ranges point at historical addresses (data is migrated only
    by time splits).
3.  **DAG shape** — only historical nodes may have more than one parent
    (section 3.5: "only historical nodes have more than one parent").
4.  **Data-node containment** — every version's key lies in its node's key
    range, committed version timestamps never reach past the node's time
    range end, and provisional versions only appear in current nodes.
5.  **Query responsibility** — for each key in a data node, the node can
    answer any query time inside its own region for that key (the version
    valid at the region start is present when the key existed before it).
6.  **Size discipline** — no current node's serialized image exceeds the
    page size.
7.  **Index-entry sanity** — entry regions are contained in the plane, child
    addresses are readable, and levels decrease from root to leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.nodes import DataNode, IndexNode
from repro.core.records import Rectangle
from repro.core.tsb_tree import TSBTree


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by the checker."""

    invariant: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] {self.message}"


def check_tree(tree: TSBTree) -> List[Violation]:
    """Return every invariant violation found in ``tree`` (empty == healthy)."""
    violations: List[Violation] = []
    parent_counts: Dict[Tuple, int] = {}
    nodes = _reachable_nodes(tree, violations)

    for node in nodes:
        if isinstance(node, IndexNode):
            _check_index_node(tree, node, violations)
            for entry in node.entries:
                parent_counts[entry.child] = parent_counts.get(entry.child, 0) + 1
        else:
            _check_data_node(tree, node, violations)

    _check_parent_counts(tree, nodes, parent_counts, violations)
    return violations


def assert_tree_valid(tree: TSBTree) -> None:
    """Raise ``AssertionError`` listing every violation, if any."""
    violations = check_tree(tree)
    if violations:
        details = "\n".join(str(violation) for violation in violations)
        raise AssertionError(f"TSB-tree invariant violations:\n{details}")


def _reachable_nodes(tree: TSBTree, violations: List[Violation]) -> List:
    """Collect every readable reachable node, reporting unreadable children.

    The checker must keep going when the structure is damaged (that is what
    it exists to report), so unreadable children become ``reachability``
    violations rather than exceptions.
    """
    nodes: List = []
    seen: Set = set()
    stack = [tree.root_address]
    while stack:
        address = stack.pop()
        if address in seen:
            continue
        seen.add(address)
        try:
            node = tree._load_node(address)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the checker
            violations.append(
                Violation("reachability", f"node at {address} cannot be read: {exc}")
            )
            continue
        nodes.append(node)
        if isinstance(node, IndexNode):
            stack.extend(entry.child for entry in node.entries)
    return nodes


# ----------------------------------------------------------------------
# Index nodes
# ----------------------------------------------------------------------
def _check_index_node(tree: TSBTree, node: IndexNode, violations: List[Violation]) -> None:
    if node.address.is_magnetic and node.serialized_size() > tree.page_size:
        violations.append(
            Violation(
                "size",
                f"current index node {node.address} is {node.serialized_size()} bytes "
                f"(page size {tree.page_size})",
            )
        )
    if not node.entries:
        violations.append(Violation("tiling", f"index node {node.address} is empty"))
        return

    for entry in node.entries:
        if entry.region.times.is_current and not entry.child.is_magnetic:
            violations.append(
                Violation(
                    "tier",
                    f"entry {entry} has an open time range but points at the "
                    "historical device",
                )
            )
        if not entry.region.times.is_current and not entry.child.is_historical:
            violations.append(
                Violation(
                    "tier",
                    f"entry {entry} has a closed time range but points at the "
                    "magnetic device",
                )
            )
        try:
            child = tree._load_node(entry.child)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the checker
            violations.append(
                Violation("reachability", f"entry {entry} cannot be read: {exc}")
            )
            continue
        if isinstance(child, IndexNode) and child.level >= node.level:
            violations.append(
                Violation(
                    "levels",
                    f"index node {node.address} (level {node.level}) references index "
                    f"node {child.address} (level {child.level})",
                )
            )
        if isinstance(child, DataNode) and node.level != 1 and node.address.is_magnetic:
            # Historical index nodes keep the level they had when migrated,
            # but a current index node above level 1 should not point
            # directly at data nodes unless its level says so.
            violations.append(
                Violation(
                    "levels",
                    f"index node {node.address} at level {node.level} references a "
                    f"data node {child.address}",
                )
            )

    _check_tiling(node, violations)


def _check_tiling(node: IndexNode, violations: List[Violation]) -> None:
    """Grid-sample the node's region and count covering entries per cell."""
    clipped = []
    for entry in node.entries:
        intersection = entry.region.intersect(node.region)
        if intersection is None:
            violations.append(
                Violation(
                    "tiling",
                    f"entry {entry} does not intersect its node's region {node.region}",
                )
            )
        else:
            clipped.append(intersection)
    if not clipped:
        return

    key_points = _sample_key_points(node, clipped)
    time_points = _sample_time_points(node, clipped)
    for key in key_points:
        for timestamp in time_points:
            if not node.region.contains_point(key, timestamp):
                continue
            covering = sum(
                1 for region in clipped if region.contains_point(key, timestamp)
            )
            if covering == 0:
                violations.append(
                    Violation(
                        "tiling",
                        f"index node {node.address}: point ({key!r}, {timestamp}) in "
                        f"{node.region} is covered by no child",
                    )
                )
            elif covering > 1:
                violations.append(
                    Violation(
                        "tiling",
                        f"index node {node.address}: point ({key!r}, {timestamp}) is "
                        f"covered by {covering} children",
                    )
                )


def _sample_key_points(node: IndexNode, regions: List[Rectangle]) -> List:
    keys: Set = set()
    for region in regions + [node.region]:
        for bound in (region.keys.low, region.keys.high):
            if bound is not None:
                keys.add(bound)
    points: List = []
    for key in sorted(keys):
        points.append(key)
    # Add midpoints / a point below the lowest and above the highest bound so
    # unbounded ranges are exercised too.
    sorted_keys = sorted(keys)
    if sorted_keys and all(isinstance(key, int) for key in sorted_keys):
        points.append(sorted_keys[0] - 1)
        points.append(sorted_keys[-1] + 1)
        for low, high in zip(sorted_keys, sorted_keys[1:]):
            points.append((low + high) // 2)
    elif sorted_keys:
        points.append(sorted_keys[0] + "\x00")
        points.append(sorted_keys[-1] + "\x7f")
    else:
        points.append(0)
    return sorted(set(points))


def _sample_time_points(node: IndexNode, regions: List[Rectangle]) -> List[int]:
    times: Set[int] = {node.region.times.start}
    for region in regions:
        times.add(region.times.start)
        if region.times.end is not None:
            times.add(region.times.end)
            times.add(max(0, region.times.end - 1))
    latest = max(times)
    times.add(latest + 1)
    return sorted(times)


# ----------------------------------------------------------------------
# Data nodes
# ----------------------------------------------------------------------
def _check_data_node(tree: TSBTree, node: DataNode, violations: List[Violation]) -> None:
    if node.address.is_magnetic:
        if not node.region.times.is_current:
            violations.append(
                Violation(
                    "tier",
                    f"data node {node.address} is on the magnetic disk but its time "
                    f"range {node.region.times} is closed",
                )
            )
        if node.serialized_size() > tree.page_size:
            violations.append(
                Violation(
                    "size",
                    f"current data node {node.address} is {node.serialized_size()} "
                    f"bytes (page size {tree.page_size})",
                )
            )
    else:
        if node.region.times.is_current:
            violations.append(
                Violation(
                    "tier",
                    f"data node {node.address} is historical but its time range is "
                    "still open",
                )
            )

    for version in node.versions:
        if not node.region.keys.contains(version.key):
            violations.append(
                Violation(
                    "containment",
                    f"version {version} lies outside data node key range "
                    f"{node.region.keys}",
                )
            )
        if version.is_provisional and node.address.is_historical:
            violations.append(
                Violation(
                    "transactions",
                    f"provisional version {version} was migrated to historical node "
                    f"{node.address}",
                )
            )
        if (
            version.timestamp is not None
            and node.region.times.end is not None
            and version.timestamp >= node.region.times.end
        ):
            violations.append(
                Violation(
                    "containment",
                    f"version {version} has a timestamp at or past its historical "
                    f"node's end time {node.region.times.end}",
                )
            )

    _check_responsibility(node, violations)


def _check_responsibility(node: DataNode, violations: List[Violation]) -> None:
    """Each key present must be answerable at the node's region start."""
    start = node.region.times.start
    for key in {version.key for version in node.versions}:
        versions = node.versions_for_key(key)
        committed = [v for v in versions if v.timestamp is not None]
        if not committed:
            continue
        earliest = min(v.timestamp for v in committed)  # type: ignore[type-var]
        if earliest > start:
            # The key first appeared inside this node's time range; nothing
            # to answer at the region start.
            continue
        if node.version_as_of(key, start) is None and not any(
            v.is_tombstone for v in committed
        ):
            violations.append(
                Violation(
                    "responsibility",
                    f"data node {node.address} cannot answer key {key!r} at its "
                    f"region start {start} although the key existed before it",
                )
            )


# ----------------------------------------------------------------------
# DAG shape
# ----------------------------------------------------------------------
def _check_parent_counts(
    tree: TSBTree,
    nodes: List,
    parent_counts: Dict[Tuple, int],
    violations: List[Violation],
) -> None:
    for node in nodes:
        count = parent_counts.get(node.address, 0)
        if node.address == tree.root_address:
            if count != 0:
                violations.append(
                    Violation("dag", f"root node {node.address} has {count} parents")
                )
            continue
        if count == 0:
            violations.append(
                Violation("dag", f"node {node.address} is unreachable from any parent")
            )
        if count > 1 and node.address.is_magnetic:
            violations.append(
                Violation(
                    "dag",
                    f"current node {node.address} has {count} parents; only historical "
                    "nodes may be shared",
                )
            )
