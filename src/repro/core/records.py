"""Record versions, key ranges and time ranges.

The paper models *stepwise constant* data (section 1, Figure 1): each record
version is stamped with the commit time of the transaction that created it and
remains valid until the next version of the same key is created.  A record
version is therefore a point in key space and a half-open interval in time;
TSB-tree nodes and index entries are rectangles in the same key x time plane.

This module defines the three value types everything else is built from:

* :class:`Version` — one committed (or provisional) record version.
* :class:`KeyRange` — a half-open interval of keys, possibly unbounded.
* :class:`TimeRange` — a half-open interval of commit times, possibly open
  ended (``end=None`` means "still current").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.storage.serialization import Key, key_size, timestamp_size, value_size


class RecordError(Exception):
    """Raised on malformed record versions or ranges."""


@dataclass(frozen=True)
class Version:
    """A single version of a record.

    Parameters
    ----------
    key:
        The record's primary key (int or str; one kind per tree).
    timestamp:
        Commit time of the transaction that wrote this version, or ``None``
        for a provisional (uncommitted) version — section 4 of the paper:
        uncommitted versions carry no timestamp, are never migrated to the
        historical database and can be erased on abort.
    value:
        Opaque payload bytes.
    txn_id:
        Identifier of the writing transaction while the version is
        provisional (``None`` once committed).
    is_tombstone:
        True when this version records the logical deletion of the key (used
        by secondary indexes when an attribute value stops applying, and by
        the optional logical-delete extension).  The tombstone itself is never
        deleted — the non-deletion policy applies to history, not to the
        logical current state.
    """

    key: Key
    timestamp: Optional[int]
    value: bytes = b""
    txn_id: Optional[int] = None
    is_tombstone: bool = False

    def __post_init__(self) -> None:
        if self.timestamp is not None and self.timestamp < 0:
            raise RecordError("commit timestamps must be non-negative")
        if self.timestamp is None and self.txn_id is None:
            raise RecordError("a provisional version must carry its txn_id")
        if not isinstance(self.value, (bytes, bytearray)):
            raise RecordError("record values must be bytes")

    @property
    def is_committed(self) -> bool:
        return self.timestamp is not None

    @property
    def is_provisional(self) -> bool:
        return self.timestamp is None

    def committed(self, commit_timestamp: int) -> "Version":
        """Return the committed form of a provisional version (section 4)."""
        if self.is_committed:
            raise RecordError("version is already committed")
        return replace(self, timestamp=commit_timestamp, txn_id=None)

    def serialized_size(self) -> int:
        """Bytes this version occupies inside a data-node page image."""
        # Versions are immutable and sized constantly (page-fit tests, split
        # evaluation, node content accounting), so the size is memoized.
        cached = self.__dict__.get("_cached_size")
        if cached is not None:
            return cached
        # key + timestamp + flags byte + optional txn id + value
        txn_bytes = 9 if self.txn_id is not None else 1
        size = (
            key_size(self.key)
            + timestamp_size(self.timestamp)
            + 1
            + txn_bytes
            + value_size(self.value)
        )
        object.__setattr__(self, "_cached_size", size)
        return size

    def identity(self) -> Tuple[Key, Optional[int], Optional[int]]:
        """Identity used to recognise redundant copies made by time splits."""
        return (self.key, self.timestamp, self.txn_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        stamp = "uncommitted" if self.timestamp is None else f"T={self.timestamp}"
        suffix = " (tombstone)" if self.is_tombstone else ""
        return f"<{self.key} {stamp}{suffix}>"


@dataclass(frozen=True)
class KeyRange:
    """Half-open key interval ``[low, high)``.

    ``low=None`` means negative infinity and ``high=None`` positive infinity,
    so the initial root node covers ``KeyRange(None, None)``.
    """

    low: Optional[Key] = None
    high: Optional[Key] = None

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None and not self.low < self.high:
            raise RecordError(f"empty key range [{self.low!r}, {self.high!r})")

    @staticmethod
    def full() -> "KeyRange":
        """The whole key space (the root's key range)."""
        return KeyRange(None, None)

    def contains(self, key: Key) -> bool:
        if self.low is not None and key < self.low:
            return False
        if self.high is not None and not key < self.high:
            return False
        return True

    def contains_range(self, other: "KeyRange") -> bool:
        """True when ``other`` lies entirely inside this range."""
        low_ok = self.low is None or (other.low is not None and not other.low < self.low)
        high_ok = self.high is None or (
            other.high is not None and not self.high < other.high
        )
        return low_ok and high_ok

    def strictly_contains_key(self, key: Key) -> bool:
        """True when ``key`` is inside the range but equal to neither bound.

        This is the test of the Index Node Keyspace Split Rule (section 3.5):
        child entries whose key range *strictly* contains the split value are
        copied into both halves.
        """
        low_ok = self.low is None or self.low < key
        high_ok = self.high is None or key < self.high
        return low_ok and high_ok

    def overlaps(self, other: "KeyRange") -> bool:
        if self.high is not None and other.low is not None and not other.low < self.high:
            return False
        if other.high is not None and self.low is not None and not self.low < other.high:
            return False
        return True

    def intersect(self, other: "KeyRange") -> Optional["KeyRange"]:
        """Return the overlap of the two ranges, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        low = self.low
        if other.low is not None and (low is None or low < other.low):
            low = other.low
        high = self.high
        if other.high is not None and (high is None or other.high < high):
            high = other.high
        return KeyRange(low, high)

    def split_at(self, key: Key) -> Tuple["KeyRange", "KeyRange"]:
        """Split into ``[low, key)`` and ``[key, high)``."""
        if not self.strictly_contains_key(key) and not (
            self.low is not None and key == self.low
        ):
            if not self.contains(key):
                raise RecordError(f"split key {key!r} outside range {self}")
        if self.low is not None and not self.low < key:
            raise RecordError(f"split key {key!r} must exceed range low {self.low!r}")
        if self.high is not None and not key < self.high:
            raise RecordError(f"split key {key!r} must be below range high {self.high!r}")
        return KeyRange(self.low, key), KeyRange(key, self.high)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        return f"[{low}, {high})"


@dataclass(frozen=True)
class TimeRange:
    """Half-open commit-time interval ``[start, end)``.

    ``end=None`` denotes a *current* region that extends to "now and beyond";
    every region referring to a node in the current database is open ended,
    and every region referring to a historical node is closed on the right by
    the time-split value that created it.
    """

    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise RecordError("time ranges start at or after time zero")
        if self.end is not None and not self.start < self.end:
            raise RecordError(f"empty time range [{self.start}, {self.end})")

    @staticmethod
    def current(start: int = 0) -> "TimeRange":
        return TimeRange(start, None)

    @property
    def is_current(self) -> bool:
        return self.end is None

    def contains(self, timestamp: int) -> bool:
        if timestamp < self.start:
            return False
        if self.end is not None and timestamp >= self.end:
            return False
        return True

    def contains_range(self, other: "TimeRange") -> bool:
        if other.start < self.start:
            return False
        if self.end is None:
            return True
        if other.end is None:
            return False
        return other.end <= self.end

    def overlaps(self, other: "TimeRange") -> bool:
        if self.end is not None and other.start >= self.end:
            return False
        if other.end is not None and self.start >= other.end:
            return False
        return True

    def intersect(self, other: "TimeRange") -> Optional["TimeRange"]:
        if not self.overlaps(other):
            return None
        start = max(self.start, other.start)
        if self.end is None:
            end = other.end
        elif other.end is None:
            end = self.end
        else:
            end = min(self.end, other.end)
        return TimeRange(start, end)

    def split_at(self, timestamp: int) -> Tuple["TimeRange", "TimeRange"]:
        """Split into ``[start, timestamp)`` and ``[timestamp, end)``."""
        if timestamp <= self.start:
            raise RecordError(
                f"split time {timestamp} must exceed range start {self.start}"
            )
        if self.end is not None and timestamp >= self.end:
            raise RecordError(f"split time {timestamp} must precede range end {self.end}")
        return TimeRange(self.start, timestamp), TimeRange(timestamp, self.end)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        end = "now" if self.end is None else str(self.end)
        return f"[{self.start}, {end})"


@dataclass(frozen=True)
class Rectangle:
    """A region of the key x time plane: the responsibility of one node."""

    keys: KeyRange = field(default_factory=KeyRange.full)
    times: TimeRange = field(default_factory=TimeRange.current)

    @staticmethod
    def full() -> "Rectangle":
        return Rectangle(KeyRange.full(), TimeRange.current(0))

    def contains_point(self, key: Key, timestamp: int) -> bool:
        return self.keys.contains(key) and self.times.contains(timestamp)

    def contains(self, other: "Rectangle") -> bool:
        return self.keys.contains_range(other.keys) and self.times.contains_range(
            other.times
        )

    def overlaps(self, other: "Rectangle") -> bool:
        return self.keys.overlaps(other.keys) and self.times.overlaps(other.times)

    def intersect(self, other: "Rectangle") -> Optional["Rectangle"]:
        keys = self.keys.intersect(other.keys)
        times = self.times.intersect(other.times)
        if keys is None or times is None:
            return None
        return Rectangle(keys, times)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.keys} x {self.times}"


# ----------------------------------------------------------------------
# Trusted fast constructors for the page-decode path
#
# Page images are produced by our own encoder, so re-validating every field
# while decoding only burns time: these bypass the dataclass __init__ and
# __post_init__ checks.  They must never be fed unvalidated user input.
# ----------------------------------------------------------------------
def decoded_version(
    key: Key,
    timestamp: Optional[int],
    value: bytes,
    txn_id: Optional[int],
    is_tombstone: bool,
) -> Version:
    version = Version.__new__(Version)
    fields_dict = version.__dict__
    fields_dict["key"] = key
    fields_dict["timestamp"] = timestamp
    fields_dict["value"] = value
    fields_dict["txn_id"] = txn_id
    fields_dict["is_tombstone"] = is_tombstone
    return version


def decoded_rectangle(
    low: Optional[Key], high: Optional[Key], start: int, end: Optional[int]
) -> Rectangle:
    keys = KeyRange.__new__(KeyRange)
    keys.__dict__["low"] = low
    keys.__dict__["high"] = high
    times = TimeRange.__new__(TimeRange)
    times.__dict__["start"] = start
    times.__dict__["end"] = end
    rect = Rectangle.__new__(Rectangle)
    rect.__dict__["keys"] = keys
    rect.__dict__["times"] = times
    return rect


# ----------------------------------------------------------------------
# Helpers over collections of versions
# ----------------------------------------------------------------------
def latest_committed(versions: Iterable[Version]) -> Optional[Version]:
    """Return the committed version with the greatest timestamp, if any."""
    best: Optional[Version] = None
    for version in versions:
        if version.timestamp is None:
            continue
        if best is None or version.timestamp > best.timestamp:
            best = version
    return best


def version_as_of(versions: Iterable[Version], timestamp: int) -> Optional[Version]:
    """Return the version valid at ``timestamp`` (stepwise-constant rule).

    The valid version is the committed one with the greatest commit time not
    exceeding ``timestamp`` — "look at the last entry made before T"
    (section 1, Figure 1).  Returns ``None`` when no such version exists or
    when the valid version is a tombstone.
    """
    best: Optional[Version] = None
    for version in versions:
        if version.timestamp is None or version.timestamp > timestamp:
            continue
        if best is None or version.timestamp > best.timestamp:
            best = version
    if best is not None and best.is_tombstone:
        return None
    return best


def records_valid_between(records: Sequence, start: int, end: int) -> List:
    """Select the records of one key valid at some point in ``[start, end)``.

    ``records`` is that key's full committed history, oldest first; each
    record carries a ``timestamp`` and is valid from it until the next
    record's timestamp (the stepwise-constant rule of section 1).  Works on
    any record type with a ``timestamp`` attribute, so every engine's
    time-slice query shares this one definition.
    """
    if end <= start:
        return []
    selected: List = []
    for position, record in enumerate(records):
        next_start = (
            records[position + 1].timestamp
            if position + 1 < len(records)
            else None
        )
        # Valid interval of this record: [timestamp, next_start).
        if record.timestamp >= end:
            continue
        if next_start is not None and next_start <= start:
            continue
        selected.append(record)
    return selected


def distinct_keys(versions: Iterable[Version]) -> List[Key]:
    """Return the sorted distinct keys appearing in ``versions``."""
    return sorted({version.key for version in versions})


def group_by_key(versions: Sequence[Version]) -> "dict[Key, List[Version]]":
    """Group versions by key, each group sorted by commit time.

    Provisional versions sort after every committed one (they are newer than
    anything committed so far).
    """
    grouped: "dict[Key, List[Version]]" = {}
    for version in versions:
        grouped.setdefault(version.key, []).append(version)
    for group in grouped.values():
        group.sort(key=_version_order)
    return grouped


def _version_order(version: Version) -> Tuple[int, int]:
    if version.timestamp is None:
        return (1, version.txn_id or 0)
    return (0, version.timestamp)
