"""The Time-Split B-tree (paper section 3).

:class:`TSBTree` is a single integrated index over a versioned, timestamped
database with a non-deletion policy.  Current nodes live on an erasable
magnetic disk and are split B+-tree style by key or migrated by time; the
historical halves of time splits are consolidated and appended to a
write-once historical device.  One tree answers:

* current lookups (``search_current``),
* as-of lookups (``search_as_of``) — the record valid at an earlier time,
* snapshots and range scans at any time (``snapshot``, ``range_search``),
* full version histories of a key (``key_history``),

and supports the transaction-processing features of section 4: provisional
(uncommitted) versions that are never migrated and can be erased on abort,
and commit stamping.

The tree is deliberately explicit about its storage interactions: every node
it touches is read from and written to the simulated devices as a serialized
page image, so the space and I/O numbers the experiment harness reports are
byte-accurate, not estimates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.nodes import DataNode, IndexEntry, IndexNode, NodeError, decode_node
from repro.core.policy import SplitContext, SplitPolicy, ThresholdPolicy
from repro.obs import trace
from repro.core.records import (
    KeyRange,
    Rectangle,
    TimeRange,
    Version,
    records_valid_between,
    version_as_of,
)
from repro.core.split import (
    SplitDecision,
    SplitError,
    SplitKind,
    choose_index_split_key,
    choose_key_split_value,
    find_local_index_split_time,
    index_key_split,
    index_time_split,
    key_split_versions,
    split_region_by_key,
    split_region_by_time,
    time_split_versions,
)
from repro.storage.device import Address
from repro.storage.magnetic import MagneticDisk
from repro.storage.pagecache import PageCache
from repro.storage.serialization import (
    ByteReader,
    ByteWriter,
    Key,
    read_address,
    write_address,
)
from repro.storage.worm import WormDisk

#: Devices usable as the historical store: anything with append_region/read.
HistoricalDevice = Union[WormDisk, "object"]

#: Marker identifying a magnetic page as a TSB-tree superblock.
_SUPERBLOCK_MAGIC = 0x7513_B001


class TSBTreeError(Exception):
    """Base class for TSB-tree usage errors."""


class RecordTooLargeError(TSBTreeError):
    """A single record version does not fit in an empty data page."""


class TimestampOrderError(TSBTreeError):
    """Commit timestamps must be non-decreasing (rollback database, section 1)."""


class ProvisionalVersionError(TSBTreeError):
    """Raised when commit/abort cannot find the expected provisional version."""


@dataclass
class TreeCounters:
    """Cumulative structural-event counters maintained by the tree."""

    inserts: int = 0
    updates: int = 0
    data_key_splits: int = 0
    data_time_splits: int = 0
    index_key_splits: int = 0
    index_time_splits: int = 0
    redundant_versions_written: int = 0
    redundant_index_entries_written: int = 0
    historical_bytes_written: int = 0
    historical_nodes_written: int = 0
    provisional_writes: int = 0
    commits: int = 0
    aborts: int = 0

    @property
    def total_splits(self) -> int:
        return (
            self.data_key_splits
            + self.data_time_splits
            + self.index_key_splits
            + self.index_time_splits
        )

    def field_values(self) -> List[int]:
        """Counter values in declaration order (the superblock wire order)."""
        return [getattr(self, spec.name) for spec in fields(self)]

    def combined(self, other: "TreeCounters") -> "TreeCounters":
        """Element-wise sum of two counter sets (shard/experiment rollups)."""
        return TreeCounters(
            **{
                spec.name: getattr(self, spec.name) + getattr(other, spec.name)
                for spec in fields(self)
            }
        )

    @classmethod
    def from_field_values(cls, values: Sequence[int]) -> "TreeCounters":
        """Rebuild counters from :meth:`field_values` output.

        Tolerates a shorter sequence (a superblock written before a counter
        was added): missing trailing counters keep their zero defaults.
        """
        counters = cls()
        for spec, value in zip(fields(cls), values):
            setattr(counters, spec.name, int(value))
        return counters

    def as_dict(self) -> Dict[str, int]:
        return {
            "inserts": self.inserts,
            "updates": self.updates,
            "data_key_splits": self.data_key_splits,
            "data_time_splits": self.data_time_splits,
            "index_key_splits": self.index_key_splits,
            "index_time_splits": self.index_time_splits,
            "redundant_versions_written": self.redundant_versions_written,
            "redundant_index_entries_written": self.redundant_index_entries_written,
            "historical_bytes_written": self.historical_bytes_written,
            "historical_nodes_written": self.historical_nodes_written,
            "provisional_writes": self.provisional_writes,
            "commits": self.commits,
            "aborts": self.aborts,
        }


class TSBTree:
    """A Time-Split B-tree spanning a magnetic and a historical device.

    Parameters
    ----------
    page_size:
        Size of a current (magnetic) node in bytes.  Nodes split when their
        serialized image would exceed this.
    policy:
        The split-decision policy (see :mod:`repro.core.policy`).  Defaults to
        ``ThresholdPolicy()``.
    magnetic:
        The erasable device holding current nodes; a fresh
        :class:`~repro.storage.magnetic.MagneticDisk` by default.
    historical:
        The append-only device holding migrated nodes; a fresh
        :class:`~repro.storage.worm.WormDisk` by default.  Anything exposing
        ``append_region(bytes) -> Address`` and ``read(Address) -> bytes``
        works, including :class:`~repro.storage.optical_library.OpticalLibrary`.
    cache_pages:
        Capacity of the buffer pool over the magnetic device.
    """

    def __init__(
        self,
        page_size: int = 1024,
        policy: Optional[SplitPolicy] = None,
        magnetic: Optional[MagneticDisk] = None,
        historical: Optional[HistoricalDevice] = None,
        cache_pages: int = 128,
    ) -> None:
        if page_size < 128:
            raise ValueError("page_size must be at least 128 bytes")
        self.page_size = page_size
        self.policy = policy or ThresholdPolicy()
        self.magnetic = magnetic or MagneticDisk(page_size=page_size)
        if self.magnetic.page_size < page_size:
            raise ValueError("magnetic page size smaller than tree page size")
        self.historical = historical or WormDisk(sector_size=min(1024, page_size))
        self.cache = PageCache(self.magnetic, capacity=cache_pages)
        self._cache_pages = cache_pages
        self._init_node_cache(cache_pages)
        self.counters = TreeCounters()
        self._max_committed_ts = 0
        self._next_auto_ts = 1
        self._log_anchor = 0
        self._log_anchor_offset = 0
        # The first magnetic page is the superblock: the durable pointer to
        # the current root written by :meth:`checkpoint` and read by
        # :meth:`open` when the database is reopened from its devices.
        self._superblock_address = self.magnetic.allocate_page()
        # The tree starts as a single empty data node covering all keys and
        # all times from zero onward.
        root_address = self.magnetic.allocate_page()
        root = DataNode(address=root_address, region=Rectangle.full(), versions=[])
        self._store_node(root)
        self._root_address = root_address
        self._height = 1
        self.checkpoint()

    # ------------------------------------------------------------------
    # Public write API
    # ------------------------------------------------------------------
    def insert(self, key: Key, value: bytes, timestamp: Optional[int] = None) -> int:
        """Insert a new committed version of ``key``.

        An insert with a key already present is an update: the old version
        stays in the database (non-deletion policy) and the new version
        becomes current.  ``timestamp`` must be non-decreasing across calls;
        when omitted, the tree assigns the next internal commit time.
        Returns the commit timestamp used.
        """
        timestamp = self._resolve_timestamp(timestamp)
        version = Version(key=key, timestamp=timestamp, value=bytes(value))
        self._insert_version(version)
        self.counters.inserts += 1
        # Whether the insert superseded a live version is observed at the
        # leaf during the insert descent, so updates are counted without a
        # second root-to-leaf descent per call.
        if self._last_insert_superseded:
            self.counters.updates += 1
        self._max_committed_ts = max(self._max_committed_ts, timestamp)
        self._next_auto_ts = max(self._next_auto_ts, timestamp + 1)
        return timestamp

    def delete(self, key: Key, timestamp: Optional[int] = None) -> int:
        """Logically delete ``key`` by writing a tombstone version.

        The non-deletion policy still holds: all previous versions remain
        queryable at their own times; only current and later-as-of reads stop
        seeing the key.
        """
        timestamp = self._resolve_timestamp(timestamp)
        version = Version(key=key, timestamp=timestamp, value=b"", is_tombstone=True)
        self._insert_version(version)
        self.counters.inserts += 1
        self._max_committed_ts = max(self._max_committed_ts, timestamp)
        self._next_auto_ts = max(self._next_auto_ts, timestamp + 1)
        return timestamp

    def insert_provisional(self, key: Key, value: bytes, txn_id: int) -> None:
        """Write an uncommitted version on behalf of transaction ``txn_id``.

        Provisional versions carry no timestamp, are invisible to ordinary
        reads, never migrate to the historical database and can be erased by
        :meth:`abort_provisional` (paper section 4).  Re-writing a key inside
        the same transaction replaces the earlier provisional version.
        """
        self._remove_existing_provisional(key, txn_id)
        version = Version(key=key, timestamp=None, value=bytes(value), txn_id=txn_id)
        self._insert_version(version)
        self.counters.provisional_writes += 1

    def delete_provisional(self, key: Key, txn_id: int) -> None:
        """Write an uncommitted tombstone on behalf of ``txn_id``."""
        self._remove_existing_provisional(key, txn_id)
        version = Version(
            key=key, timestamp=None, value=b"", txn_id=txn_id, is_tombstone=True
        )
        self._insert_version(version)
        self.counters.provisional_writes += 1

    def _remove_existing_provisional(self, key: Key, txn_id: int) -> None:
        node = self._descend_to_current_leaf(key)
        existing = node.provisional_for_key(key, txn_id)
        if existing is not None:
            node.remove_version(existing)
            self._store_node(node)

    def commit_provisional(self, txn_id: int, keys: Iterable[Key], commit_timestamp: int) -> None:
        """Stamp transaction ``txn_id``'s provisional versions with its commit time."""
        if commit_timestamp < self._max_committed_ts:
            raise TimestampOrderError(
                f"commit timestamp {commit_timestamp} precedes the latest committed "
                f"timestamp {self._max_committed_ts}"
            )
        for key in keys:
            node = self._descend_to_current_leaf(key)
            provisional = node.provisional_for_key(key, txn_id)
            if provisional is None:
                raise ProvisionalVersionError(
                    f"transaction {txn_id} has no provisional version for key {key!r}"
                )
            node.remove_version(provisional)
            node.add_version(provisional.committed(commit_timestamp))
            self._store_node(node)
        self._max_committed_ts = max(self._max_committed_ts, commit_timestamp)
        self._next_auto_ts = max(self._next_auto_ts, commit_timestamp + 1)
        self.counters.commits += 1

    def abort_provisional(self, txn_id: int, keys: Iterable[Key]) -> None:
        """Erase transaction ``txn_id``'s provisional versions (abort path)."""
        for key in keys:
            node = self._descend_to_current_leaf(key)
            provisional = node.provisional_for_key(key, txn_id)
            if provisional is not None:
                node.remove_version(provisional)
                self._store_node(node)
        self.counters.aborts += 1

    # ------------------------------------------------------------------
    # Public read API
    # ------------------------------------------------------------------
    def search_current(self, key: Key, txn_id: Optional[int] = None) -> Optional[Version]:
        """Return the most recent committed version of ``key`` (or ``None``).

        When ``txn_id`` is given and that transaction has written a
        provisional version of the key, the provisional version is returned
        instead (read-your-writes).  Tombstoned keys read as absent.
        """
        node = self._descend_to_current_leaf(key)
        if txn_id is not None:
            provisional = node.provisional_for_key(key, txn_id)
            if provisional is not None:
                return None if provisional.is_tombstone else provisional
        latest = node.latest_for_key(key)
        if latest is None or latest.is_tombstone:
            return None
        return latest

    def search_as_of(self, key: Key, timestamp: int) -> Optional[Version]:
        """Return the version of ``key`` valid at ``timestamp`` (or ``None``)."""
        node = self._descend_to_leaf(key, timestamp)
        return node.version_as_of(key, timestamp)

    def key_history(self, key: Key) -> List[Version]:
        """Every committed version of ``key``, oldest first, duplicates removed."""
        region = Rectangle(self._point_key_range(key), TimeRange(0, None))
        seen: Set[Tuple] = set()
        history: List[Version] = []
        for node in self._iter_data_nodes(region):
            for version in node.versions_for_key(key):
                if version.timestamp is None:
                    continue
                identity = version.identity()
                if identity in seen:
                    continue
                seen.add(identity)
                history.append(version)
        history.sort(key=lambda v: v.timestamp)  # type: ignore[arg-type]
        return history

    def history_between(self, key: Key, start: int, end: int) -> List[Version]:
        """Versions of ``key`` that were valid at some point in ``[start, end)``.

        This is the time-slice query of temporal databases: it returns the
        version valid at ``start`` (if any) followed by every version created
        inside the interval, oldest first.
        """
        return records_valid_between(self.key_history(key), start, end)

    def time_slice(
        self,
        start: int,
        end: int,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
    ) -> Dict[Key, List[Version]]:
        """``history_between`` for every key in ``[low, high)``, in one tree walk.

        Equivalent to ``{k: history_between(k, start, end)}`` over all keys,
        but walks the key x ``[start, end)`` rectangle once instead of doing
        one root-to-leaf descent per key.  Correctness rests on two TSB-tree
        invariants: a node overlapping the query rectangle contains the
        version of each of its keys valid at the node's start time (the
        redundancy written by time splits), and every version created inside
        the node's time span for its key range is stored in it.  The per-key
        version lists gathered from the scanned nodes are therefore
        suffix-closed over ``[start, end)`` — any version old enough to be
        missing has a successor in the list at or before ``start`` — which is
        exactly what :func:`records_valid_between` needs to produce the same
        answer as the full per-key history.

        Tombstone versions are returned (callers present or filter them);
        provisional versions are not.  Keys whose slice is empty are omitted.
        """
        if end <= start:
            return {}
        key_range = KeyRange(low, high)
        region = Rectangle(key_range, TimeRange(start, end))
        gathered: Dict[Key, Dict[Tuple, Version]] = {}
        for node in self._iter_data_nodes(region):
            for key in node.keys():
                if not key_range.contains(key):
                    continue
                bucket = gathered.setdefault(key, {})
                for version in node.versions_for_key(key):
                    if version.timestamp is None:
                        continue
                    bucket[version.identity()] = version
        result: Dict[Key, List[Version]] = {}
        for key in sorted(gathered):
            history = sorted(
                gathered[key].values(), key=lambda v: v.timestamp  # type: ignore[arg-type]
            )
            records = records_valid_between(history, start, end)
            if records:
                result[key] = records
        return result

    def snapshot(self, timestamp: int) -> Dict[Key, Version]:
        """The state of the database as of ``timestamp`` (paper section 2.5)."""
        region = Rectangle(KeyRange.full(), TimeRange(timestamp, timestamp + 1))
        result: Dict[Key, Version] = {}
        for node in self._iter_data_nodes(region):
            for key in node.keys():
                if not node.region.contains_point(key, timestamp):
                    continue
                valid = node.version_as_of(key, timestamp)
                if valid is not None:
                    result[key] = valid
        return result

    def range_search(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        as_of: Optional[int] = None,
    ) -> List[Version]:
        """Versions of keys in ``[low, high)`` valid at ``as_of`` (default: now)."""
        timestamp = self._max_committed_ts if as_of is None else as_of
        key_range = KeyRange(low, high)
        region = Rectangle(key_range, TimeRange(timestamp, timestamp + 1))
        results: Dict[Key, Version] = {}
        for node in self._iter_data_nodes(region):
            for key in node.keys():
                if not key_range.contains(key):
                    continue
                if not node.region.contains_point(key, timestamp):
                    continue
                valid = node.version_as_of(key, timestamp)
                if valid is not None:
                    results[key] = valid
        return [results[key] for key in sorted(results)]

    def current_keys(self) -> List[Key]:
        """Sorted keys with a live (non-tombstoned) current version."""
        return [version.key for version in self.range_search()]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of node levels from root to data nodes (1 = root is a leaf)."""
        return self._height

    @property
    def root_address(self) -> Address:
        return self._root_address

    @property
    def now(self) -> int:
        """The largest committed timestamp the tree has seen."""
        return self._max_committed_ts

    @property
    def log_anchor(self) -> int:
        """LSN of the WAL checkpoint record this tree was last flushed under.

        Zero means the tree has never been checkpointed through a
        :class:`~repro.recovery.log_manager.LogManager`; restart recovery
        then replays the durable log from its very beginning.
        """
        return self._log_anchor

    @property
    def log_anchor_offset(self) -> int:
        """Byte offset of the anchored checkpoint record in the log device.

        Lets restart recovery start decoding at the anchor instead of
        scanning the whole log from byte 0.
        """
        return self._log_anchor_offset

    def iter_nodes(self) -> Iterator[Union[DataNode, IndexNode]]:
        """Yield every reachable node exactly once (current and historical)."""
        seen: Set[Address] = set()
        stack: List[Address] = [self._root_address]
        while stack:
            address = stack.pop()
            if address in seen:
                continue
            seen.add(address)
            node = self._load_node(address)
            yield node
            if isinstance(node, IndexNode):
                stack.extend(entry.child for entry in node.entries)

    def data_nodes(self) -> List[DataNode]:
        return [node for node in self.iter_nodes() if isinstance(node, DataNode)]

    def index_nodes(self) -> List[IndexNode]:
        return [node for node in self.iter_nodes() if isinstance(node, IndexNode)]

    def flush(self) -> None:
        """Write every dirty buffered page back to the magnetic device."""
        self._flush_node_cache()
        self.cache.flush()

    def drop_caches(self, cache_pages: Optional[int] = None) -> None:
        """Flush and empty both the decoded-node cache and the buffer pool.

        Used by benchmarks to measure cold-cache behaviour; optionally
        resizes the caches to ``cache_pages``.
        """
        if cache_pages is not None:
            self._cache_pages = cache_pages
        self.flush()
        with self._node_lock:
            self._node_cache.clear()
            self._dirty_nodes.clear()
            self._decode_memo.clear()
            self._node_capacity = self._cache_pages
        self.cache = PageCache(self.magnetic, capacity=self._cache_pages)

    # ------------------------------------------------------------------
    # Durability: superblock checkpointing and reopening
    # ------------------------------------------------------------------
    def checkpoint(
        self,
        log_anchor: Optional[int] = None,
        log_anchor_offset: Optional[int] = None,
    ) -> None:
        """Flush dirty pages and persist the root pointer to the superblock.

        After a checkpoint, :meth:`open` can rebuild an equivalent tree from
        the two devices alone.  The structural-event counters are persisted
        too, so accounting survives reopen and restart recovery.

        ``log_anchor`` records the LSN of the WAL checkpoint record this
        flush belongs to (see :meth:`~repro.recovery.log_manager.LogManager.checkpoint`)
        and ``log_anchor_offset`` that record's byte position in the log
        device; restart recovery replays the log from that record.  When
        omitted, the previously recorded anchor is kept.
        """
        if log_anchor is not None:
            self._log_anchor = log_anchor
            self._log_anchor_offset = log_anchor_offset or 0
        self.flush()
        writer = ByteWriter()
        writer.put_u32(_SUPERBLOCK_MAGIC)
        write_address(writer, self._root_address)
        writer.put_u32(self._height)
        writer.put_u64(self._max_committed_ts)
        writer.put_u64(self._next_auto_ts)
        writer.put_u32(self.page_size)
        writer.put_u64(self._log_anchor)
        writer.put_u64(self._log_anchor_offset)
        counter_values = self.counters.field_values()
        # Counters are best-effort on pathologically small pages: drop them
        # rather than overflow the superblock page.
        if writer.size + 4 + 8 * len(counter_values) > self.magnetic.page_size:
            counter_values = []
        writer.put_u32(len(counter_values))
        for value in counter_values:
            writer.put_u64(value)
        self.magnetic.write(self._superblock_address, writer.getvalue())

    @classmethod
    def open(
        cls,
        magnetic: MagneticDisk,
        historical: HistoricalDevice,
        policy: Optional[SplitPolicy] = None,
        cache_pages: int = 128,
        superblock_page: int = 0,
    ) -> "TSBTree":
        """Reopen a TSB-tree from its devices using the last checkpoint.

        ``magnetic`` and ``historical`` must be the same device objects (or
        faithful reloads of their contents) that the original tree wrote to;
        ``superblock_page`` is the magnetic page the superblock lives in
        (page 0 unless the devices were shared with something else).
        """
        superblock_address = Address.magnetic(superblock_page)
        reader = ByteReader(magnetic.read(superblock_address))
        magic = reader.get_u32()
        if magic != _SUPERBLOCK_MAGIC:
            raise TSBTreeError(
                f"magnetic page {superblock_page} does not hold a TSB-tree superblock"
            )
        root_address = read_address(reader)
        height = reader.get_u32()
        max_committed_ts = reader.get_u64()
        next_auto_ts = reader.get_u64()
        page_size = reader.get_u32()
        log_anchor = reader.get_u64()
        log_anchor_offset = reader.get_u64()
        counter_values = [reader.get_u64() for _ in range(reader.get_u32())]

        tree = cls.__new__(cls)
        tree.page_size = page_size
        tree.policy = policy or ThresholdPolicy()
        tree.magnetic = magnetic
        tree.historical = historical
        tree.cache = PageCache(magnetic, capacity=cache_pages)
        tree._cache_pages = cache_pages
        tree._init_node_cache(cache_pages)
        tree.counters = TreeCounters.from_field_values(counter_values)
        tree._max_committed_ts = max_committed_ts
        tree._next_auto_ts = next_auto_ts
        tree._log_anchor = log_anchor
        tree._log_anchor_offset = log_anchor_offset
        tree._superblock_address = superblock_address
        tree._root_address = root_address
        tree._height = height
        return tree

    # ------------------------------------------------------------------
    # Internal: timestamps
    # ------------------------------------------------------------------
    def _resolve_timestamp(self, timestamp: Optional[int]) -> int:
        if timestamp is None:
            return self._next_auto_ts
        if timestamp < self._max_committed_ts:
            raise TimestampOrderError(
                f"timestamp {timestamp} precedes the latest committed timestamp "
                f"{self._max_committed_ts}; a rollback database stamps records in "
                "commit order"
            )
        return timestamp

    # ------------------------------------------------------------------
    # Internal: node I/O
    #
    # Current (magnetic) nodes live decoded in a write-back node cache:
    # `_load_node` is a dictionary hit for warm pages and `_store_node`
    # only marks the node dirty — the page image is produced once, when
    # the node is evicted or the tree flushes, instead of on every touch.
    # This is the single biggest hot-path win: profiling showed per-touch
    # encode/decode of the full page accounted for ~80% of insert time.
    # Historical (WORM) reads stay uncached so query I/O accounting for
    # the historical device remains byte-accurate.
    # ------------------------------------------------------------------
    def _init_node_cache(self, capacity: int) -> None:
        self._node_cache: "OrderedDict[int, Union[DataNode, IndexNode]]" = OrderedDict()
        self._dirty_nodes: Set[int] = set()
        self._node_capacity = capacity
        self._node_lock = threading.Lock()
        # Decode memo: page_id -> (raw page image, decoded node).  When a
        # node-cache miss is still a buffer-pool hit, the pool hands back
        # the *same* bytes object it stored, and the previous decode of
        # those bytes is still exact — clean eviction means unmutated, and
        # a dirty write-back stores a fresh bytes object, failing the
        # identity check.  Device-IO accounting is untouched: the memo is
        # consulted only after ``cache.read`` already did its bookkeeping.
        self._decode_memo: Dict[int, tuple] = {}

    def _load_node(self, address: Address) -> Union[DataNode, IndexNode]:
        if address.is_magnetic:
            page_id = address.page_id
            with self._node_lock:
                node = self._node_cache.get(page_id)
                if node is not None:
                    self._node_cache.move_to_end(page_id)
                    # A decoded-node hit serves the page without touching the
                    # device — credit it to the buffer-pool stats so cache
                    # accounting (and the S5 hit-ratio study) still sees it.
                    self.cache.stats.hits += 1
                    return node
            data = self.cache.read(address)
            memo = self._decode_memo.get(page_id)
            if memo is not None and memo[0] is data:
                node = memo[1]
            else:
                node = decode_node(address, data)
            with self._node_lock:
                if len(self._decode_memo) > 4 * self._node_capacity:
                    self._decode_memo.clear()
                self._decode_memo[page_id] = (data, node)
                self._node_cache[page_id] = node
                self._node_cache.move_to_end(page_id)
                self._evict_clean_nodes()
            return node
        return decode_node(address, self.historical.read(address))

    def _store_node(self, node: Union[DataNode, IndexNode]) -> None:
        # serialized_size() is a conservative budget (it over-charges fixed
        # headers); only when it exceeds the page does the exact encoded
        # length need checking, so the hot path never serialises here.
        if node.serialized_size() > self.page_size and node.address.is_magnetic:
            exact = len(node.encode())
            if exact > self.page_size:
                raise NodeError(
                    f"node {node.address} serialises to {exact} bytes "
                    f"(> page size {self.page_size}); split bookkeeping is broken"
                )
        page_id = node.address.page_id
        with self._node_lock:
            self._node_cache[page_id] = node
            self._node_cache.move_to_end(page_id)
            self._dirty_nodes.add(page_id)
            self._evict_nodes()

    def _evict_clean_nodes(self) -> None:
        """Shrink the node cache to capacity, touching clean nodes only.

        Called from the read path, which may run under a shared latch:
        dropping a clean node needs no page write, so concurrent readers
        never mutate the buffer pool.  Dirty nodes are skipped here and
        reclaimed by the next `_store_node`/`flush` (which run exclusive).
        """
        excess = len(self._node_cache) - self._node_capacity
        if excess <= 0:
            return
        victims = []
        for page_id in self._node_cache:  # oldest first
            if page_id not in self._dirty_nodes:
                victims.append(page_id)
                if len(victims) >= excess:
                    break
        for page_id in victims:
            del self._node_cache[page_id]

    def _evict_nodes(self) -> None:
        """Shrink the node cache to capacity, writing back evicted dirty nodes."""
        while len(self._node_cache) > self._node_capacity:
            page_id, node = self._node_cache.popitem(last=False)
            if page_id in self._dirty_nodes:
                self._dirty_nodes.discard(page_id)
                data = node.encode()
                self.cache.write(node.address, data)
                # The freshly-encoded image and the node agree exactly, so
                # a re-read served from the buffer pool can reuse the node.
                self._decode_memo[page_id] = (data, node)

    def _flush_node_cache(self) -> None:
        with self._node_lock:
            dirty = sorted(self._dirty_nodes)
            for page_id in dirty:
                node = self._node_cache.get(page_id)
                if node is not None:
                    data = node.encode()
                    self.cache.write(node.address, data)
                    self._decode_memo[page_id] = (data, node)
            self._dirty_nodes.clear()

    def _append_historical(self, image: bytes) -> Address:
        address = self.historical.append_region(image)
        self.counters.historical_bytes_written += len(image)
        self.counters.historical_nodes_written += 1
        return address

    # ------------------------------------------------------------------
    # Internal: descent
    # ------------------------------------------------------------------
    def _find_current_child(self, node: IndexNode, key: Key) -> IndexEntry:
        return node.find_current_child(key)

    def _descend_to_current_leaf(self, key: Key) -> DataNode:
        node = self._load_node(self._root_address)
        while isinstance(node, IndexNode):
            entry = self._find_current_child(node, key)
            node = self._load_node(entry.child)
        assert isinstance(node, DataNode)
        return node

    def _descend_to_leaf(self, key: Key, timestamp: int) -> DataNode:
        node = self._load_node(self._root_address)
        while isinstance(node, IndexNode):
            entry = node.find_child(key, timestamp)
            node = self._load_node(entry.child)
        assert isinstance(node, DataNode)
        return node

    def _iter_data_nodes(self, region: Rectangle) -> Iterator[DataNode]:
        """Yield each data node whose region overlaps ``region`` exactly once."""
        seen: Set[Address] = set()
        stack: List[Address] = [self._root_address]
        while stack:
            address = stack.pop()
            if address in seen:
                continue
            seen.add(address)
            node = self._load_node(address)
            if isinstance(node, DataNode):
                if node.region.overlaps(region):
                    yield node
                continue
            for entry in node.children_overlapping(region):
                stack.append(entry.child)

    # ------------------------------------------------------------------
    # Internal: insertion and splitting
    # ------------------------------------------------------------------
    def _note_superseded(self, node: DataNode, version: Version) -> None:
        latest = node.latest_for_key(version.key)
        self._last_insert_superseded = latest is not None and not latest.is_tombstone

    def _insert_version(self, version: Version) -> None:
        self._last_insert_superseded = False
        probe = DataNode(
            address=Address.magnetic(0), region=Rectangle.full(), versions=[version]
        )
        if probe.serialized_size() > self.page_size:
            raise RecordTooLargeError(
                f"a single version of key {version.key!r} needs "
                f"{probe.serialized_size()} bytes but pages hold {self.page_size}"
            )
        replacements = self._insert_recursive(self._root_address, version)
        if replacements is not None:
            self._grow_root(replacements)

    def _insert_recursive(
        self, address: Address, version: Version
    ) -> Optional[List[IndexEntry]]:
        node = self._load_node(address)
        if isinstance(node, DataNode):
            if node.fits(self.page_size, extra=version):
                self._note_superseded(node, version)
                node.add_version(version)
                self._store_node(node)
                return None
            return self._split_data_node(node, version)

        entry = self._find_current_child(node, version.key)
        child_replacements = self._insert_recursive(entry.child, version)
        if child_replacements is None:
            return None
        node.replace_entry(entry, child_replacements)
        if node.fits(self.page_size):
            self._store_node(node)
            return None
        return self._split_index_node(node)

    def _grow_root(self, entries: Sequence[IndexEntry]) -> None:
        """Create a new index root above the entries produced by a root split."""
        new_root_address = self.magnetic.allocate_page()
        new_root = IndexNode(
            address=new_root_address,
            region=Rectangle.full(),
            entries=list(entries),
            level=self._height,
        )
        self._store_node(new_root)
        self._root_address = new_root_address
        self._height += 1
        # The brand-new root might itself be too full when a lower split
        # produced many replacement entries; split it immediately if so.
        if not new_root.fits(self.page_size):
            replacements = self._split_index_node(new_root)
            self._grow_root(replacements)

    # -- data nodes ---------------------------------------------------------
    def _split_data_node(self, node: DataNode, incoming: Version) -> List[IndexEntry]:
        """Split ``node`` per policy, insert ``incoming``, return parent entries."""
        context = SplitContext(
            versions=tuple(node.versions),
            region=node.region,
            page_size=self.page_size,
            now=self._max_committed_ts,
        )
        decision = self.policy.decide(context)
        replacements = self._perform_data_split(node, decision, context)
        return self._insert_into_replacements(replacements, incoming)

    def _perform_data_split(
        self, node: DataNode, decision: SplitDecision, context: SplitContext
    ) -> List[IndexEntry]:
        """Carry out a split decision, falling back to the other kind on error."""
        if decision.kind is SplitKind.TIME:
            assert decision.split_time is not None
            try:
                return self._perform_data_time_split(node, decision.split_time)
            except SplitError:
                return self._perform_data_key_split(
                    node, choose_key_split_value(node.versions)
                )
        assert decision.split_key is not None
        try:
            return self._perform_data_key_split(node, decision.split_key)
        except SplitError:
            return self._perform_data_time_split(
                node, self.policy.pick_split_time(context)
            )

    def _perform_data_time_split(self, node: DataNode, split_time: int) -> List[IndexEntry]:
        """Time split: migrate history to the optical disk (section 3.1)."""
        with trace.span("tsb.data_time_split", time=split_time):
            historical_region, current_region = split_region_by_time(node.region, split_time)
            split = time_split_versions(node.versions, split_time)
            historical_node = DataNode(
                address=Address.magnetic(0),  # placeholder; real address assigned below
                region=historical_region,
                versions=list(split.historical),
            )
            historical_address = self._append_historical(historical_node.encode())
            node.versions = list(split.current)
            node.region = current_region
            self._store_node(node)
            self.counters.data_time_splits += 1
            self.counters.redundant_versions_written += len(split.redundant)
            return [
                IndexEntry(child=historical_address, region=historical_region),
                IndexEntry(child=node.address, region=current_region),
            ]

    def _perform_data_key_split(self, node: DataNode, split_key: Key) -> List[IndexEntry]:
        """Pure key split: B+-tree style, nothing copied (section 3.1, Figure 5)."""
        with trace.span("tsb.data_key_split", key=split_key):
            left_region, right_region = split_region_by_key(node.region, split_key)
            left_versions, right_versions = key_split_versions(node.versions, split_key)
            # Allocate the sibling page before touching the existing node so that
            # a full magnetic disk leaves the original node intact.
            right_address = self.magnetic.allocate_page()
            node.versions = list(left_versions)
            node.region = left_region
            self._store_node(node)
            right_node = DataNode(
                address=right_address, region=right_region, versions=list(right_versions)
            )
            self._store_node(right_node)
            self.counters.data_key_splits += 1
            return [
                IndexEntry(child=node.address, region=left_region),
                IndexEntry(child=right_address, region=right_region),
            ]

    def _insert_into_replacements(
        self, replacements: List[IndexEntry], version: Version
    ) -> List[IndexEntry]:
        """Insert ``version`` into whichever current child now covers it."""
        for position, entry in enumerate(replacements):
            if not entry.is_current:
                continue
            if not entry.region.keys.contains(version.key):
                continue
            if not entry.region.times.is_current:
                continue
            child = self._load_node(entry.child)
            assert isinstance(child, DataNode)
            if child.fits(self.page_size, extra=version):
                self._note_superseded(child, version)
                child.add_version(version)
                self._store_node(child)
                return replacements
            nested = self._split_data_node(child, version)
            return replacements[:position] + nested + replacements[position + 1 :]
        raise NodeError(
            f"no current replacement entry covers key {version.key!r}"
        )

    # -- index nodes ----------------------------------------------------------
    def _split_index_node(self, node: IndexNode) -> List[IndexEntry]:
        """Split a full index node, preferring a local time split when allowed."""
        replacements = self._perform_index_split(node)
        expanded: List[IndexEntry] = []
        for entry in replacements:
            if entry.is_current:
                child = self._load_node(entry.child)
                if isinstance(child, IndexNode) and not child.fits(self.page_size):
                    expanded.extend(self._split_index_node(child))
                    continue
            expanded.append(entry)
        return expanded

    def _perform_index_split(self, node: IndexNode) -> List[IndexEntry]:
        if self.policy.prefers_index_time_splits:
            split_time = find_local_index_split_time(node.entries)
            if split_time is not None and split_time > node.region.times.start:
                try:
                    return self._perform_index_time_split(node, split_time)
                except SplitError:
                    pass
        try:
            split_key = choose_index_split_key(node.entries)
            return self._perform_index_key_split(node, split_key)
        except SplitError:
            # No usable key split (e.g. every entry spans the full key range);
            # fall back to a time split if one is possible at all.
            split_time = find_local_index_split_time(node.entries)
            if split_time is None or split_time <= node.region.times.start:
                raise
            return self._perform_index_time_split(node, split_time)

    def _perform_index_time_split(self, node: IndexNode, split_time: int) -> List[IndexEntry]:
        """Local index time split (section 3.5, Figure 8)."""
        with trace.span("tsb.index_time_split", time=split_time):
            historical_region, current_region = split_region_by_time(node.region, split_time)
            split = index_time_split(node.entries, split_time)
            historical_node = IndexNode(
                address=Address.magnetic(0),
                region=historical_region,
                entries=list(split.historical),
                level=node.level,
            )
            historical_address = self._append_historical(historical_node.encode())
            node.entries = list(split.current)
            node.region = current_region
            self.counters.index_time_splits += 1
            self.counters.redundant_index_entries_written += len(split.copied)
            return [
                IndexEntry(child=historical_address, region=historical_region),
                *self._store_or_resplit_index(node),
            ]

    def _perform_index_key_split(self, node: IndexNode, split_key: Key) -> List[IndexEntry]:
        """Index keyspace split (section 3.5 rule), duplicating straddling entries."""
        with trace.span("tsb.index_key_split", key=split_key):
            left_region, right_region = split_region_by_key(node.region, split_key)
            split = index_key_split(node.entries, split_key)
            # Allocate before mutating, as in the data-node key split.
            right_address = self.magnetic.allocate_page()
            node.entries = list(split.left)
            node.region = left_region
            right_node = IndexNode(
                address=right_address,
                region=right_region,
                entries=list(split.right),
                level=node.level,
            )
            self.counters.index_key_splits += 1
            self.counters.redundant_index_entries_written += len(split.copied)
            return [
                *self._store_or_resplit_index(node),
                *self._store_or_resplit_index(right_node),
            ]

    def _store_or_resplit_index(self, node: IndexNode) -> List[IndexEntry]:
        """Store one split half, or split it again if it still overflows.

        A key split copies straddling entries into both halves and a time
        split keeps every still-alive entry on the current side, so on small
        pages a single split does not guarantee both halves fit.  Splitting
        the oversized half again (strictly narrowing its region each round)
        converges; ``_store_node`` would refuse the oversized page image.
        """
        if node.fits(self.page_size):
            self._store_node(node)
            return [IndexEntry(child=node.address, region=node.region)]
        return self._perform_index_split(node)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _point_key_range(key: Key) -> KeyRange:
        """A key range containing exactly ``key`` (used for history scans)."""
        if isinstance(key, int):
            return KeyRange(key, key + 1)
        return KeyRange(key, key + "\x00")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TSBTree(height={self._height}, now={self._max_committed_ts}, "
            f"policy={self.policy.name})"
        )
