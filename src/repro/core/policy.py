"""Split-decision policies (paper sections 3.2 and 3.3).

When a data node is full the TSB-tree must choose between a **key split**
(minimises total space and redundancy, but keeps historical versions on the
expensive magnetic disk) and a **time split** (migrates history to the cheap
optical disk and minimises current-database space, at the price of redundant
copies of versions alive across the split time).  The paper's boundary
conditions:

* a node containing only current versions (pure insertions) *must* key split —
  a time split would migrate nothing;
* a node whose versions all share one key *must* time split — there is no key
  to split at;
* in between, the choice is a tunable trade-off, possibly driven by the
  storage cost function ``CS = SpaceM * CM + SpaceO * CO``.

Every policy here honours the two boundary conditions and differs only in the
middle ground and in how it picks the time-split value (section 3.3 allows
any time later than the node's last time split, not just "now").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.records import Rectangle, Version
from repro.core.split import (
    SplitDecision,
    candidate_split_times,
    choose_key_split_value,
    evaluate_time_split,
    last_update_time,
    min_redundancy_split_time,
)
from repro.storage.costmodel import CostModel


@dataclass(frozen=True)
class SplitContext:
    """Everything a policy may consult when deciding how to split a node."""

    versions: Sequence[Version]
    region: Rectangle
    page_size: int
    now: int

    def legal_split_times(self) -> list[int]:
        """Candidate time-split values later than the node's region start."""
        return [
            stamp
            for stamp in candidate_split_times(self.versions)
            if stamp > self.region.times.start
        ]

    def historical_fraction(self) -> float:
        """Fraction of stored bytes belonging to superseded versions."""
        total = 0
        historical = 0
        by_key: dict = {}
        for version in self.versions:
            by_key.setdefault(version.key, []).append(version)
        for group in by_key.values():
            committed = sorted(
                (v for v in group if v.timestamp is not None),
                key=lambda v: v.timestamp,
            )
            for version in group:
                size = version.serialized_size()
                total += size
                if committed and version.timestamp is not None:
                    if version is not committed[-1]:
                        historical += size
        if total == 0:
            return 0.0
        return historical / total

    def can_key_split(self) -> bool:
        return len({v.key for v in self.versions}) >= 2

    def can_time_split(self) -> bool:
        """Whether a time split would actually shrink the current node.

        Section 3.2: if only insertions have occurred, "time splitting by
        itself is useless" — every migrated version would also have to stay
        in the current node as the version valid at the split time.  A time
        split is useful only when some legal split time leaves the current
        node with strictly fewer versions than before.
        """
        # Only a key holding two or more committed versions can shrink under
        # a time split: a single-version key either stays current or migrates
        # *and* leaves its redundant copy behind (rule 3), never shrinking
        # the node.  Insert-only nodes are therefore rejected without
        # evaluating a single candidate split.
        counts: dict = {}
        for version in self.versions:
            if version.timestamp is not None:
                counts[version.key] = counts.get(version.key, 0) + 1
        if all(count < 2 for count in counts.values()):
            return False
        # Existential check: probe order is irrelevant, and late split times
        # migrate the most history, so scanning latest-first almost always
        # answers on the first candidate instead of grinding through every
        # (mostly useless) early stamp.
        for stamp in reversed(self.legal_split_times()):
            split = evaluate_time_split(self.versions, stamp)
            if split is not None and len(split.current) < len(self.versions):
                return True
        return False


class SplitPolicy(abc.ABC):
    """Strategy object deciding how to split a full data node."""

    #: Human-readable policy name used in experiment reports.
    name: str = "policy"
    #: Whether the tree should attempt local time splits of *index* nodes
    #: when they become full (policies that never time split data nodes have
    #: no historical index entries worth migrating).
    prefers_index_time_splits: bool = True

    @abc.abstractmethod
    def decide(self, context: SplitContext) -> SplitDecision:
        """Return the split to perform for the node described by ``context``."""

    # -- shared helpers ----------------------------------------------------
    def _forced_decision(self, context: SplitContext) -> Optional[SplitDecision]:
        """Apply the paper's boundary conditions; None when both are possible."""
        can_key = context.can_key_split()
        can_time = context.can_time_split()
        if not can_key and not can_time:
            raise ValueError(
                "node can be split neither by key nor by time "
                "(single key, single version: the record is too large for a page)"
            )
        if not can_time:
            return SplitDecision.key(choose_key_split_value(context.versions))
        if not can_key:
            return SplitDecision.time(self.pick_split_time(context))
        return None

    def pick_split_time(self, context: SplitContext) -> int:
        """Default split-time chooser: the current time (WOBT behaviour)."""
        return context.now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _choose_time(context: SplitContext, chooser: str, now: int) -> int:
    """Shared implementation of the section 3.3 split-time choices."""
    legal = context.legal_split_times()
    if chooser == "current":
        return now
    if chooser == "last_update":
        stamp = last_update_time(context.versions)
        if stamp is not None and stamp > context.region.times.start:
            return stamp
        return now
    if chooser == "min_redundancy":
        stamp = min_redundancy_split_time(context.versions)
        if stamp is not None and stamp > context.region.times.start:
            return stamp
        return now
    if chooser == "median":
        if legal:
            return legal[len(legal) // 2]
        return now
    raise ValueError(f"unknown split-time chooser {chooser!r}")


class AlwaysKeySplitPolicy(SplitPolicy):
    """Key split whenever possible: minimises total space and redundancy.

    This is the "total space minimisation is the only goal" end of the
    section 3.2 spectrum.  History accumulates on the magnetic disk and is
    only migrated when a node degenerates to a single key.
    """

    name = "always-key"
    prefers_index_time_splits = False

    def decide(self, context: SplitContext) -> SplitDecision:
        forced = self._forced_decision(context)
        if forced is not None:
            return forced
        return SplitDecision.key(choose_key_split_value(context.versions))


class AlwaysTimeSplitPolicy(SplitPolicy):
    """Time split whenever possible: minimises current-database space.

    ``time_chooser`` selects the split-time rule of section 3.3:

    * ``"current"`` — split at the current time, exactly as the WOBT must;
    * ``"last_update"`` — split at the time of the last update, keeping
      freshly inserted records out of the historical node;
    * ``"min_redundancy"`` — scan candidate times for the one minimising
      redundant bytes;
    * ``"median"`` — the median committed timestamp.
    """

    def __init__(self, time_chooser: str = "current") -> None:
        self.time_chooser = time_chooser
        self.name = f"always-time[{time_chooser}]"

    def decide(self, context: SplitContext) -> SplitDecision:
        forced = self._forced_decision(context)
        if forced is not None:
            return forced
        return SplitDecision.time(self.pick_split_time(context))

    def pick_split_time(self, context: SplitContext) -> int:
        return _choose_time(context, self.time_chooser, context.now)


class ThresholdPolicy(SplitPolicy):
    """Time split when the node is sufficiently "historical", else key split.

    ``threshold`` is the fraction of the node's bytes occupied by superseded
    versions above which a time split is chosen.  ``threshold=0`` degenerates
    to :class:`AlwaysTimeSplitPolicy`; ``threshold=1`` to
    :class:`AlwaysKeySplitPolicy`.  This directly encodes the paper's
    guidance: "The more out-of-date (historical) data is on a node, the more
    likely it is that time splitting should be used."
    """

    def __init__(self, threshold: float = 0.5, time_chooser: str = "last_update") -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = threshold
        self.time_chooser = time_chooser
        self.name = f"threshold[{threshold:.2f}]"

    def decide(self, context: SplitContext) -> SplitDecision:
        forced = self._forced_decision(context)
        if forced is not None:
            return forced
        if context.historical_fraction() >= self.threshold:
            return SplitDecision.time(self.pick_split_time(context))
        return SplitDecision.key(choose_key_split_value(context.versions))

    def pick_split_time(self, context: SplitContext) -> int:
        return _choose_time(context, self.time_chooser, context.now)


class CostDrivenPolicy(SplitPolicy):
    """Choose the split minimising incremental storage cost per byte freed.

    Section 3.2 proposes parameterising the split decision by the cost
    function ``CS = SpaceM * CM + SpaceO * CO``.  For a full node we compare:

    * **key split** — allocates one extra magnetic page; the node's bytes are
      unchanged, so the incremental cost is ``CM * page_size`` and the space
      freed in the original node is (roughly) half its payload;
    * **time split** — appends the historical node to the optical disk
      (``CO * historical_bytes``) and keeps redundant copies of the versions
      alive across the split time on the magnetic page; the space freed on
      the magnetic page is the migrated payload minus that redundancy.

    The policy picks whichever action costs less per magnetic byte it frees,
    which makes it lean toward time splits as ``CM/CO`` grows — the behaviour
    the S4 experiment checks.
    """

    def __init__(self, cost_model: Optional[CostModel] = None, time_chooser: str = "last_update") -> None:
        self.cost_model = cost_model or CostModel()
        self.time_chooser = time_chooser
        self.name = f"cost[{self.cost_model.cost_ratio:.1f}]"

    def decide(self, context: SplitContext) -> SplitDecision:
        forced = self._forced_decision(context)
        if forced is not None:
            return forced
        split_time = self.pick_split_time(context)
        evaluation = evaluate_time_split(context.versions, split_time)
        if evaluation is None:
            return SplitDecision.key(choose_key_split_value(context.versions))
        total_bytes = sum(v.serialized_size() for v in context.versions)

        cm = self.cost_model.magnetic_cost_per_byte
        co = self.cost_model.optical_cost_per_byte

        key_cost = cm * context.page_size
        key_freed = max(1, total_bytes // 2)

        time_cost = co * evaluation.historical_bytes + cm * evaluation.redundant_bytes
        time_freed = max(1, total_bytes - evaluation.current_bytes)

        if time_cost / time_freed <= key_cost / key_freed:
            return SplitDecision.time(split_time)
        return SplitDecision.key(choose_key_split_value(context.versions))

    def pick_split_time(self, context: SplitContext) -> int:
        return _choose_time(context, self.time_chooser, context.now)


class WOBTEmulationPolicy(SplitPolicy):
    """Mimic the WOBT's splitting behaviour inside the TSB-tree.

    The WOBT (section 2.3) splits by key value *and* current time when enough
    current records exist to fill two nodes, and purely by (current) time
    otherwise.  Emulating it inside the TSB-tree means: time split at the
    current time whenever the node holds any superseded versions, otherwise
    key split.  Used by the S3 comparison as a like-for-like reference point.
    """

    name = "wobt-emulation"

    def decide(self, context: SplitContext) -> SplitDecision:
        forced = self._forced_decision(context)
        if forced is not None:
            return forced
        if context.historical_fraction() > 0.0:
            return SplitDecision.time(context.now)
        return SplitDecision.key(choose_key_split_value(context.versions))


DEFAULT_POLICY = ThresholdPolicy


def make_policy(name: str, **kwargs) -> SplitPolicy:
    """Factory used by the experiment harness and the examples.

    Recognised names: ``always-key``, ``always-time``, ``threshold``,
    ``cost``, ``wobt``.
    """
    name = name.lower()
    if name in {"always-key", "key"}:
        return AlwaysKeySplitPolicy()
    if name in {"always-time", "time"}:
        return AlwaysTimeSplitPolicy(**kwargs)
    if name == "threshold":
        return ThresholdPolicy(**kwargs)
    if name in {"cost", "cost-driven"}:
        return CostDrivenPolicy(**kwargs)
    if name in {"wobt", "wobt-emulation"}:
        return WOBTEmulationPolicy()
    raise ValueError(f"unknown split policy {name!r}")
