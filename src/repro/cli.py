"""Command-line interface: ``python -m repro <command>``.

The CLI exposes the experiment harness without writing any Python:

``python -m repro figures``
    Re-run the paper's Figures 1–9 and print pass/fail for every check.

``python -m repro study S1`` (or S2..S7, or ``all``)
    Run one of the DESIGN.md studies and print its result table.  ``--ops``
    scales the workload.

``python -m repro demo``
    A tiny end-to-end demonstration (insert, update, as-of query, snapshot)
    printed step by step — the quickstart example in one command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.experiment import (
    StudyResult,
    run_cost_function_study,
    run_policy_study,
    run_query_io_study,
    run_secondary_study,
    run_tsb_vs_wobt,
    run_txn_study,
    run_update_ratio_study,
)
from repro.analysis.figures import run_all_figures
from repro.analysis.report import render_comparison
from repro.core import ThresholdPolicy, TSBTree, collect_space_stats
from repro.workload import WorkloadSpec


def _study_runners(operations: int) -> Dict[str, Callable[[], StudyResult]]:
    spec = WorkloadSpec(operations=operations, update_fraction=0.5, seed=1989)
    query_spec = WorkloadSpec(operations=operations, update_fraction=0.6, seed=1989)
    return {
        "S1": lambda: run_policy_study(spec=spec),
        "S2": lambda: run_update_ratio_study(operations=operations),
        "S3": lambda: run_tsb_vs_wobt(
            spec=WorkloadSpec(operations=min(operations, 4_000), update_fraction=0.5, seed=1989)
        ),
        "S4": lambda: run_cost_function_study(spec=spec),
        "S5": lambda: run_query_io_study(spec=query_spec),
        "S6": run_txn_study,
        "S7": run_secondary_study,
    }


def command_figures(_args: argparse.Namespace) -> int:
    failures = 0
    for result in run_all_figures():
        print(result.summary())
        for check, passed in result.checks.items():
            print(f"    [{'ok ' if passed else 'FAIL'}] {check}")
            failures += 0 if passed else 1
    if failures:
        print(f"{failures} checks failed")
        return 1
    print("All figures reproduced.")
    return 0


def command_study(args: argparse.Namespace) -> int:
    runners = _study_runners(args.ops)
    names: List[str]
    if args.name.lower() == "all":
        names = list(runners)
    else:
        name = args.name.upper()
        if name not in runners:
            print(f"unknown study {args.name!r}; choose one of {', '.join(runners)} or 'all'")
            return 2
        names = [name]
    for name in names:
        result = runners[name]()
        print(render_comparison(f"{name} — {result.study}", result.rows))
    return 0


def command_demo(_args: argparse.Namespace) -> int:
    tree = TSBTree(page_size=1024, policy=ThresholdPolicy(0.5))
    print("insert  alice -> balance=50   @ T=1")
    tree.insert("alice", b"balance=50", timestamp=1)
    print("insert  bob   -> balance=200  @ T=2")
    tree.insert("bob", b"balance=200", timestamp=2)
    print("update  alice -> balance=120  @ T=5")
    tree.insert("alice", b"balance=120", timestamp=5)
    print()
    print(f"current alice          : {tree.search_current('alice').value.decode()}")
    print(f"as-of   alice at T=3   : {tree.search_as_of('alice', 3).value.decode()}")
    snapshot = {key: version.value.decode() for key, version in tree.snapshot(2).items()}
    print(f"snapshot at T=2        : {snapshot}")
    history = [(v.timestamp, v.value.decode()) for v in tree.key_history("alice")]
    print(f"history of alice       : {history}")
    stats = collect_space_stats(tree)
    print(
        f"storage                : {stats.magnetic_bytes_used} B magnetic, "
        f"{stats.historical_bytes_used} B historical"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Time-Split B-tree reproduction (Lomet & Salzberg, SIGMOD 1989)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser("figures", help="re-run the paper's Figures 1-9")
    figures.set_defaults(handler=command_figures)

    study = subparsers.add_parser("study", help="run one of the studies S1..S7 (or 'all')")
    study.add_argument("name", help="study id: S1..S7 or 'all'")
    study.add_argument(
        "--ops",
        type=int,
        default=3_000,
        help="workload size in operations (default: 3000)",
    )
    study.set_defaults(handler=command_study)

    demo = subparsers.add_parser("demo", help="a one-minute end-to-end demonstration")
    demo.set_defaults(handler=command_demo)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
