"""Command-line interface: ``python -m repro <command>``.

The CLI exposes the experiment harness without writing any Python:

``python -m repro figures [--engine all|tsb|wobt|naive]``
    Re-run the paper's Figures 1–9 (optionally only those exercising one
    engine) and print pass/fail for every check.

``python -m repro study S1 [--engine tsb|wobt|naive]`` (or S2..S7, or ``all``)
    Run one of the DESIGN.md studies and print its result table.  ``--ops``
    scales the workload; ``--engine`` routes the workload through the
    :class:`~repro.api.VersionStore` façade onto a different access method
    (studies needing a capability the engine lacks are skipped with a note).

``python -m repro demo [--engine tsb|wobt|naive]``
    A tiny end-to-end demonstration (insert, update, as-of query, snapshot)
    printed step by step — the quickstart example in one command, on any
    engine.

``python -m repro crash-demo``
    A narrated write-ahead-logging demonstration: commit transactions, leave
    some in flight, crash, and watch restart recovery rebuild exactly the
    durably committed state.

``python -m repro recover``
    A randomized crash-recovery trial: run a deterministic transactional
    script, crash at a chosen (or every) step, recover, and verify the
    recovered tree against the durable-prefix oracle.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.experiment import (
    StudyResult,
    run_cost_function_study,
    run_policy_study,
    run_query_io_study,
    run_secondary_study,
    run_tsb_vs_wobt,
    run_txn_study,
    run_update_ratio_study,
)
from repro.analysis.figures import run_all_figures
from repro.analysis.report import render_comparison
from repro.api import (
    ENGINE_NAMES,
    CapabilityError,
    ShardSpec,
    ShardedVersionStore,
    StoreConfig,
    VersionStore,
)
from repro.recovery import RecoverableSystem, ScriptRunner, generate_script
from repro.workload import WorkloadSpec, run_concurrent

#: Studies that configure their own fixed store set; --shards cannot reroute them.
_UNSHARDED_STUDIES = {"S3", "S6", "S7"}


def _study_runners(
    operations: int,
    engine: str = "tsb",
    shards: Optional[ShardSpec] = None,
) -> Dict[str, Callable[[], StudyResult]]:
    spec = WorkloadSpec(operations=operations, update_fraction=0.5, seed=1989)
    query_spec = WorkloadSpec(operations=operations, update_fraction=0.6, seed=1989)
    return {
        "S1": lambda: run_policy_study(spec=spec, engine=engine, shards=shards),
        "S2": lambda: run_update_ratio_study(
            operations=operations, engine=engine, shards=shards
        ),
        "S3": lambda: run_tsb_vs_wobt(
            spec=WorkloadSpec(operations=min(operations, 4_000), update_fraction=0.5, seed=1989)
        ),
        "S4": lambda: run_cost_function_study(spec=spec, engine=engine, shards=shards),
        "S5": lambda: run_query_io_study(spec=query_spec, engine=engine, shards=shards),
        "S6": lambda: run_txn_study(engine=engine),
        "S7": lambda: run_secondary_study(engine=engine),
    }


def _shard_spec(
    shard_count: int, operations: int, threads: int = 1
) -> Optional[ShardSpec]:
    """The key-range spec behind ``--shards N`` (and ``--threads T``).

    The study workloads assign sequential integer keys, so with update
    fraction ``f`` an ``operations``-step run creates roughly
    ``operations * (1 - f)`` distinct keys.  The studies run near f=0.5;
    sizing the partition to ``operations`` itself would leave the upper
    shards provably empty.  ``threads`` sizes the scatter-gather pool the
    sharded store fans queries and batches out on.
    """
    if shard_count <= 1:
        return None
    expected_keys = max(shard_count, operations // 2)
    return ShardSpec.for_int_keys(
        shard_count, key_space=expected_keys, scatter_threads=max(1, threads)
    )


def command_figures(args: argparse.Namespace) -> int:
    results = run_all_figures(engine=args.engine)
    if not results:
        print(f"No paper figures exercise engine {args.engine!r}.")
        return 0
    failures = 0
    for result in results:
        print(result.summary())
        for check, passed in result.checks.items():
            print(f"    [{'ok ' if passed else 'FAIL'}] {check}")
            failures += 0 if passed else 1
    if failures:
        print(f"{failures} checks failed")
        return 1
    print("All figures reproduced.")
    return 0


def command_study(args: argparse.Namespace) -> int:
    if args.threads > 1 and args.shards <= 1:
        print(
            f"note: --threads {args.threads} parallelizes scatter-gather over "
            "shards; without --shards > 1 it has nothing to fan out"
        )
    shards = _shard_spec(args.shards, operations=args.ops, threads=args.threads)
    runners = _study_runners(args.ops, engine=args.engine, shards=shards)
    names: List[str]
    if args.name.lower() == "all":
        names = list(runners)
    else:
        name = args.name.upper()
        if name not in runners:
            print(f"unknown study {args.name!r}; choose one of {', '.join(runners)} or 'all'")
            return 2
        names = [name]
    for name in names:
        if name == "S3" and args.engine != "tsb":
            print(
                "S3 note: this study always compares every engine "
                f"(tsb/wobt/naive); --engine {args.engine} does not change it"
            )
        if shards is not None and name in _UNSHARDED_STUDIES:
            print(
                f"{name} note: this study builds its own fixed store set; "
                f"--shards {args.shards} does not change it"
            )
        try:
            result = runners[name]()
        except CapabilityError as exc:
            print(f"{name} skipped: {exc}")
            continue
        print(render_comparison(f"{name} — {result.study}", result.rows))
    return 0


def command_demo(args: argparse.Namespace) -> int:
    try:
        shards = (
            ShardSpec.for_string_keys(
                args.shards, scatter_threads=max(1, args.threads)
            )
            if args.shards > 1
            else None
        )
    except ValueError as exc:
        print(f"--shards: {exc}")
        return 2
    config = StoreConfig(
        engine=args.engine,
        page_size=1024,
        split_policy="threshold:0.5" if args.engine == "tsb" else None,
        shards=shards,
    )
    with VersionStore.open(config) as store:
        if isinstance(store, ShardedVersionStore):
            print(
                f"engine                 : {args.engine} "
                f"(ShardedVersionStore, {store.shard_count} shards)"
            )
        else:
            print(f"engine                 : {args.engine} ({type(store.backend).__name__})")
        print("insert  alice -> balance=50   @ T=1")
        store.insert("alice", b"balance=50", timestamp=1)
        print("insert  bob   -> balance=200  @ T=2")
        store.insert("bob", b"balance=200", timestamp=2)
        print("update  alice -> balance=120  @ T=5")
        store.insert("alice", b"balance=120", timestamp=5)
        print()
        print(f"current alice          : {store.get('alice').value.decode()}")
        print(f"as-of   alice at T=3   : {store.get_as_of('alice', 3).value.decode()}")
        snapshot = {key: record.value.decode() for key, record in store.snapshot(2).items()}
        print(f"snapshot at T=2        : {snapshot}")
        history = [(r.timestamp, r.value.decode()) for r in store.key_history("alice")]
        print(f"history of alice       : {history}")
        space = store.space_summary()
        print(
            f"storage                : {space['magnetic_bytes']} B magnetic, "
            f"{space['historical_bytes']} B historical"
        )
        if isinstance(store, ShardedVersionStore):
            print()
            print("shard layout (scatter-gather answers merged the rows above):")
            for row in store.describe_shards():
                print(
                    f"  shard {row['shard']} {row['range']:<16} "
                    f"keys_written={row['keys_written']} pages={row['current_pages']}"
                )
        if args.threads > 1:
            pairs = [
                (f"{chr(ord('a') + index % 26)}-client-{index:03d}", f"payload-{index}".encode())
                for index in range(240)
            ]
            result = run_concurrent(
                store, pairs, threads=args.threads, reader_threads=args.threads
            )
            print()
            print(
                f"concurrent clients     : {result.writer_threads} writers + "
                f"{result.reader_threads} readers"
            )
            print(
                f"                         {result.writes} writes "
                f"({result.writes_per_s:,.0f}/s) and {result.reads} reads "
                f"({result.reads_per_s:,.0f}/s) in {result.elapsed_s:.3f}s"
            )
            consistent = all(
                [(r.timestamp, r.value) for r in store.key_history(key)] == versions
                for key, versions in result.history().items()
            )
            print(
                "                         histories oracle-consistent: "
                f"{'yes' if consistent and not result.errors else 'NO'}"
            )
            if result.errors or not consistent:
                return 1
    return 0


def command_crash_demo(_args: argparse.Namespace) -> int:
    system = RecoverableSystem(page_size=512, group_commit_size=2)
    print("group commit batch size      : 2 (a force makes two commits durable)")
    print()
    t1 = system.begin()
    t1.write("alice", b"balance=50")
    t1.commit()
    print(f"T1 commits alice=50          : durable={system.commit_is_durable(t1)}")
    t2 = system.begin()
    t2.write("bob", b"balance=200")
    t2.commit()
    print(
        f"T2 commits bob=200           : durable={system.commit_is_durable(t2)}"
        " (the batch filled; one force covered both)"
    )
    t3 = system.begin()
    t3.write("carol", b"balance=75")
    t3.commit()
    print(
        f"T3 commits carol=75          : durable={system.commit_is_durable(t3)}"
        " (still in the volatile log tail)"
    )
    t4 = system.begin()
    t4.write("alice", b"balance=9999")
    print("T4 writes alice=9999         : provisional, never commits")
    print()
    print("*** CRASH ***  (buffer pool, lock table and unforced log tail are gone)")
    report = system.crash()
    print(report.summary())
    print()
    alice = system.tree.search_current("alice")
    bob = system.tree.search_current("bob")
    carol = system.tree.search_current("carol")
    print(f"alice after recovery         : {alice.value.decode()} (T1, durable)")
    print(f"bob after recovery           : {bob.value.decode()} (T2, durable)")
    print(f"carol after recovery         : {carol!r} (T3's commit was never forced)")
    print("T4's provisional version     : discarded (loser)")
    print()
    t5 = system.begin()
    t5.write("alice", b"balance=120")
    timestamp = t5.commit()
    system.log.force()
    print(f"post-recovery T5 commits     : alice=120 @ T={timestamp}")
    print("The system is live again; recovery preserved exactly the committed prefix.")
    return 0


def command_recover(args: argparse.Namespace) -> int:
    if args.batch < 1:
        print("--batch must be a positive group-commit batch size")
        return 2
    script = generate_script(steps=args.ops, key_space=args.keys, seed=args.seed)
    if args.crash_at is not None and not 0 <= args.crash_at <= len(script):
        print(
            f"--crash-at must be a step index between 0 and {len(script)} "
            f"(the script has {len(script)} steps)"
        )
        return 2
    crash_points = range(len(script) + 1) if args.crash_at is None else [args.crash_at]
    failures = 0
    for crash_at in crash_points:
        runner = ScriptRunner(
            RecoverableSystem(page_size=512, group_commit_size=args.batch)
        )
        runner.run(script[:crash_at])
        expected = runner.expected_visible()
        report = runner.system.crash()
        observed = {
            version.key: version.value for version in runner.system.tree.range_search()
        }
        if observed != expected:
            failures += 1
            print(f"crash at step {crash_at}: MISMATCH")
            print(f"  expected {expected}")
            print(f"  observed {observed}")
        elif args.crash_at is not None or args.verbose:
            print(f"crash at step {crash_at}: ok — {report.summary()}")
    if failures:
        print(f"{failures} crash points failed verification")
        return 1
    print(
        f"recovery verified: {len(list(crash_points))} crash point(s), "
        f"{len(script)} scripted steps, group commit batch {args.batch}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Time-Split B-tree reproduction (Lomet & Salzberg, SIGMOD 1989)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser("figures", help="re-run the paper's Figures 1-9")
    figures.add_argument(
        "--engine",
        choices=("all",) + ENGINE_NAMES,
        default="all",
        help="only the figures exercising this engine (default: all)",
    )
    figures.set_defaults(handler=command_figures)

    study = subparsers.add_parser("study", help="run one of the studies S1..S7 (or 'all')")
    study.add_argument("name", help="study id: S1..S7 or 'all'")
    study.add_argument(
        "--ops",
        type=int,
        default=3_000,
        help="workload size in operations (default: 3000)",
    )
    study.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="tsb",
        help="access method the workload runs on, via VersionStore (default: tsb)",
    )
    study.add_argument(
        "--shards",
        type=int,
        default=1,
        help="key-range-partition the store across N shards (default: 1)",
    )
    study.add_argument(
        "--threads",
        type=int,
        default=1,
        help="scatter-gather thread-pool size for sharded stores (default: 1)",
    )
    study.set_defaults(handler=command_study)

    demo = subparsers.add_parser("demo", help="a one-minute end-to-end demonstration")
    demo.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="tsb",
        help="access method to demonstrate, via VersionStore (default: tsb)",
    )
    demo.add_argument(
        "--shards",
        type=int,
        default=1,
        help="key-range-partition the demo store across N shards (default: 1)",
    )
    demo.add_argument(
        "--threads",
        type=int,
        default=1,
        help="also run N concurrent writer + N reader client threads "
        "(and size the sharded scatter-gather pool; default: 1)",
    )
    demo.set_defaults(handler=command_demo)

    crash_demo = subparsers.add_parser(
        "crash-demo", help="narrated WAL + group commit + crash recovery demo"
    )
    crash_demo.set_defaults(handler=command_crash_demo)

    recover = subparsers.add_parser(
        "recover", help="run a randomized crash-recovery trial and verify it"
    )
    recover.add_argument(
        "--ops", type=int, default=60, help="scripted transactional steps (default: 60)"
    )
    recover.add_argument(
        "--seed", type=int, default=1989, help="script random seed (default: 1989)"
    )
    recover.add_argument(
        "--keys", type=int, default=8, help="key-space size (default: 8)"
    )
    recover.add_argument(
        "--batch", type=int, default=1, help="group-commit batch size (default: 1)"
    )
    recover.add_argument(
        "--crash-at",
        type=int,
        default=None,
        help="crash after this many steps (default: try every step)",
    )
    recover.add_argument(
        "--verbose", action="store_true", help="print a line per crash point"
    )
    recover.set_defaults(handler=command_recover)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
