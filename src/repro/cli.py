"""Command-line interface: ``python -m repro <command>``.

The CLI exposes the experiment harness without writing any Python:

``python -m repro figures [--engine all|tsb|wobt|naive]``
    Re-run the paper's Figures 1–9 (optionally only those exercising one
    engine) and print pass/fail for every check.

``python -m repro study S1 [--engine tsb|wobt|naive]`` (or S2..S7, or ``all``)
    Run one of the DESIGN.md studies and print its result table.  ``--ops``
    scales the workload; ``--engine`` routes the workload through the
    :class:`~repro.api.VersionStore` façade onto a different access method
    (studies needing a capability the engine lacks are skipped with a note).

``python -m repro demo [--engine tsb|wobt|naive]``
    A tiny end-to-end demonstration (insert, update, as-of query, snapshot)
    printed step by step — the quickstart example in one command, on any
    engine.

``python -m repro crash-demo``
    A narrated write-ahead-logging demonstration: commit transactions, leave
    some in flight, crash, and watch restart recovery rebuild exactly the
    durably committed state.

``python -m repro recover``
    A randomized crash-recovery trial: run a deterministic transactional
    script, crash at a chosen (or every) step, recover, and verify the
    recovered tree against the durable-prefix oracle.

``python -m repro stats [--watch SECONDS] [--format table|json|prometheus]``
    Drive a mixed concurrent workload (plus a deliberate lock conflict) on
    a sharded WAL store and print its full observability snapshot: op
    latency percentiles, latch/lock wait counters, cache hit ratio, the
    group-commit batch-size distribution and per-shard query latencies.

``python -m repro trace [time_slice|range|snapshot|put_many|get]``
    Record the named operation under span tracing and export a Chrome
    ``trace_event`` JSON file (open in ``chrome://tracing`` or Perfetto) —
    a scatter-gather query shows one span per shard under one parent.

``python -m repro serve [--port P] [--tenants a,b] [--shards N] [--wal]``
    Serve the version store over TCP: a struct-framed, CRC-checked binary
    protocol in front of per-tenant stores (opened on first use, resumed
    on their own devices across close/reopen).  ``--self-test`` instead
    starts the server on an ephemeral port, drives an oracle-checked
    concurrent client workload through :class:`~repro.client.ReproClient`,
    compares the answers record-for-record against an identical in-process
    run, and exits 0/1 — the CI smoke test in one command.

``python -m repro stats --server HOST:PORT``
    Fetch a *running* server's observability snapshot (its per-op service
    latencies, connection/in-flight gauges and batching histograms plus
    every open tenant store's metrics) instead of driving a local workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.experiment import (
    StudyResult,
    run_cost_function_study,
    run_policy_study,
    run_query_io_study,
    run_secondary_study,
    run_tsb_vs_wobt,
    run_txn_study,
    run_update_ratio_study,
)
from repro.analysis.figures import run_all_figures
from repro.analysis.report import render_comparison
from repro.api import (
    ENGINE_NAMES,
    CapabilityError,
    ShardSpec,
    ShardedVersionStore,
    StoreConfig,
    VersionStore,
)
from repro.obs import trace
from repro.obs.registry import MetricsRegistry
from repro.obs.prometheus import render_prometheus
from repro.recovery import RecoverableSystem, ScriptRunner, generate_script
from repro.workload import WorkloadSpec, run_concurrent

#: Studies that configure their own fixed store set; --shards cannot reroute them.
_UNSHARDED_STUDIES = {"S3", "S6", "S7"}


def _study_runners(
    operations: int,
    engine: str = "tsb",
    shards: Optional[ShardSpec] = None,
) -> Dict[str, Callable[[], StudyResult]]:
    spec = WorkloadSpec(operations=operations, update_fraction=0.5, seed=1989)
    query_spec = WorkloadSpec(operations=operations, update_fraction=0.6, seed=1989)
    return {
        "S1": lambda: run_policy_study(spec=spec, engine=engine, shards=shards),
        "S2": lambda: run_update_ratio_study(
            operations=operations, engine=engine, shards=shards
        ),
        "S3": lambda: run_tsb_vs_wobt(
            spec=WorkloadSpec(operations=min(operations, 4_000), update_fraction=0.5, seed=1989)
        ),
        "S4": lambda: run_cost_function_study(spec=spec, engine=engine, shards=shards),
        "S5": lambda: run_query_io_study(spec=query_spec, engine=engine, shards=shards),
        "S6": lambda: run_txn_study(engine=engine),
        "S7": lambda: run_secondary_study(engine=engine),
    }


def _shard_spec(
    shard_count: int, operations: int, threads: int = 1
) -> Optional[ShardSpec]:
    """The key-range spec behind ``--shards N`` (and ``--threads T``).

    The study workloads assign sequential integer keys, so with update
    fraction ``f`` an ``operations``-step run creates roughly
    ``operations * (1 - f)`` distinct keys.  The studies run near f=0.5;
    sizing the partition to ``operations`` itself would leave the upper
    shards provably empty.  ``threads`` sizes the scatter-gather pool the
    sharded store fans queries and batches out on.
    """
    if shard_count <= 1:
        return None
    expected_keys = max(shard_count, operations // 2)
    return ShardSpec.for_int_keys(
        shard_count, key_space=expected_keys, scatter_threads=max(1, threads)
    )


def command_figures(args: argparse.Namespace) -> int:
    results = run_all_figures(engine=args.engine)
    if not results:
        print(f"No paper figures exercise engine {args.engine!r}.")
        return 0
    failures = 0
    for result in results:
        print(result.summary())
        for check, passed in result.checks.items():
            print(f"    [{'ok ' if passed else 'FAIL'}] {check}")
            failures += 0 if passed else 1
    if failures:
        print(f"{failures} checks failed")
        return 1
    print("All figures reproduced.")
    return 0


def command_study(args: argparse.Namespace) -> int:
    if args.threads > 1 and args.shards <= 1:
        print(
            f"note: --threads {args.threads} parallelizes scatter-gather over "
            "shards; without --shards > 1 it has nothing to fan out"
        )
    shards = _shard_spec(args.shards, operations=args.ops, threads=args.threads)
    runners = _study_runners(args.ops, engine=args.engine, shards=shards)
    names: List[str]
    if args.name.lower() == "all":
        names = list(runners)
    else:
        name = args.name.upper()
        if name not in runners:
            print(f"unknown study {args.name!r}; choose one of {', '.join(runners)} or 'all'")
            return 2
        names = [name]
    for name in names:
        if name == "S3" and args.engine != "tsb":
            print(
                "S3 note: this study always compares every engine "
                f"(tsb/wobt/naive); --engine {args.engine} does not change it"
            )
        if shards is not None and name in _UNSHARDED_STUDIES:
            print(
                f"{name} note: this study builds its own fixed store set; "
                f"--shards {args.shards} does not change it"
            )
        try:
            result = runners[name]()
        except CapabilityError as exc:
            print(f"{name} skipped: {exc}")
            continue
        print(render_comparison(f"{name} — {result.study}", result.rows))
    return 0


def command_demo(args: argparse.Namespace) -> int:
    try:
        shards = (
            ShardSpec.for_string_keys(
                args.shards, scatter_threads=max(1, args.threads)
            )
            if args.shards > 1
            else None
        )
    except ValueError as exc:
        print(f"--shards: {exc}")
        return 2
    config = StoreConfig(
        engine=args.engine,
        page_size=1024,
        split_policy="threshold:0.5" if args.engine == "tsb" else None,
        shards=shards,
    )
    with VersionStore.open(config) as store:
        if isinstance(store, ShardedVersionStore):
            print(
                f"engine                 : {args.engine} "
                f"(ShardedVersionStore, {store.shard_count} shards)"
            )
        else:
            print(f"engine                 : {args.engine} ({type(store.backend).__name__})")
        print("insert  alice -> balance=50   @ T=1")
        store.insert("alice", b"balance=50", timestamp=1)
        print("insert  bob   -> balance=200  @ T=2")
        store.insert("bob", b"balance=200", timestamp=2)
        print("update  alice -> balance=120  @ T=5")
        store.insert("alice", b"balance=120", timestamp=5)
        print()
        print(f"current alice          : {store.get('alice').value.decode()}")
        print(f"as-of   alice at T=3   : {store.get_as_of('alice', 3).value.decode()}")
        snapshot = {key: record.value.decode() for key, record in store.snapshot(2).items()}
        print(f"snapshot at T=2        : {snapshot}")
        history = [(r.timestamp, r.value.decode()) for r in store.key_history("alice")]
        print(f"history of alice       : {history}")
        space = store.space_summary()
        print(
            f"storage                : {space['magnetic_bytes']} B magnetic, "
            f"{space['historical_bytes']} B historical"
        )
        if isinstance(store, ShardedVersionStore):
            print()
            print("shard layout (scatter-gather answers merged the rows above):")
            for row in store.describe_shards():
                print(
                    f"  shard {row['shard']} {row['range']:<16} "
                    f"keys_written={row['keys_written']} pages={row['current_pages']}"
                )
        if args.threads > 1:
            pairs = [
                (f"{chr(ord('a') + index % 26)}-client-{index:03d}", f"payload-{index}".encode())
                for index in range(240)
            ]
            result = run_concurrent(
                store, pairs, threads=args.threads, reader_threads=args.threads
            )
            print()
            print(
                f"concurrent clients     : {result.writer_threads} writers + "
                f"{result.reader_threads} readers"
            )
            print(
                f"                         {result.writes} writes "
                f"({result.writes_per_s:,.0f}/s) and {result.reads} reads "
                f"({result.reads_per_s:,.0f}/s) in {result.elapsed_s:.3f}s"
            )
            consistent = all(
                [(r.timestamp, r.value) for r in store.key_history(key)] == versions
                for key, versions in result.history().items()
            )
            print(
                "                         histories oracle-consistent: "
                f"{'yes' if consistent and not result.errors else 'NO'}"
            )
            if result.errors or not consistent:
                return 1
    return 0


def command_crash_demo(_args: argparse.Namespace) -> int:
    system = RecoverableSystem(page_size=512, group_commit_size=2)
    print("group commit batch size      : 2 (a force makes two commits durable)")
    print()
    t1 = system.begin()
    t1.write("alice", b"balance=50")
    t1.commit()
    print(f"T1 commits alice=50          : durable={system.commit_is_durable(t1)}")
    t2 = system.begin()
    t2.write("bob", b"balance=200")
    t2.commit()
    print(
        f"T2 commits bob=200           : durable={system.commit_is_durable(t2)}"
        " (the batch filled; one force covered both)"
    )
    t3 = system.begin()
    t3.write("carol", b"balance=75")
    t3.commit()
    print(
        f"T3 commits carol=75          : durable={system.commit_is_durable(t3)}"
        " (still in the volatile log tail)"
    )
    t4 = system.begin()
    t4.write("alice", b"balance=9999")
    print("T4 writes alice=9999         : provisional, never commits")
    print()
    print("*** CRASH ***  (buffer pool, lock table and unforced log tail are gone)")
    report = system.crash()
    print(report.summary())
    print()
    alice = system.tree.search_current("alice")
    bob = system.tree.search_current("bob")
    carol = system.tree.search_current("carol")
    print(f"alice after recovery         : {alice.value.decode()} (T1, durable)")
    print(f"bob after recovery           : {bob.value.decode()} (T2, durable)")
    print(f"carol after recovery         : {carol!r} (T3's commit was never forced)")
    print("T4's provisional version     : discarded (loser)")
    print()
    t5 = system.begin()
    t5.write("alice", b"balance=120")
    timestamp = t5.commit()
    system.log.force()
    print(f"post-recovery T5 commits     : alice=120 @ T={timestamp}")
    print("The system is live again; recovery preserved exactly the committed prefix.")
    return 0


def command_recover(args: argparse.Namespace) -> int:
    if args.batch < 1:
        print("--batch must be a positive group-commit batch size")
        return 2
    script = generate_script(steps=args.ops, key_space=args.keys, seed=args.seed)
    if args.crash_at is not None and not 0 <= args.crash_at <= len(script):
        print(
            f"--crash-at must be a step index between 0 and {len(script)} "
            f"(the script has {len(script)} steps)"
        )
        return 2
    crash_points = range(len(script) + 1) if args.crash_at is None else [args.crash_at]
    failures = 0
    for crash_at in crash_points:
        runner = ScriptRunner(
            RecoverableSystem(page_size=512, group_commit_size=args.batch)
        )
        runner.run(script[:crash_at])
        expected = runner.expected_visible()
        report = runner.system.crash()
        observed = {
            version.key: version.value for version in runner.system.tree.range_search()
        }
        if observed != expected:
            failures += 1
            print(f"crash at step {crash_at}: MISMATCH")
            print(f"  expected {expected}")
            print(f"  observed {observed}")
        elif args.crash_at is not None or args.verbose:
            print(f"crash at step {crash_at}: ok — {report.summary()}")
    if failures:
        print(f"{failures} crash points failed verification")
        return 1
    print(
        f"recovery verified: {len(list(crash_points))} crash point(s), "
        f"{len(script)} scripted steps, group commit batch {args.batch}"
    )
    return 0


#: Histograms whose samples are cardinalities (batch sizes, fan-out widths),
#: not seconds — the stats table prints them raw instead of in milliseconds.
_COUNT_HISTOGRAMS = {"wal.batch_size", "scatter.fanout"}


def _open_observed_store(engine: str, ops: int, shards: int, threads: int):
    """A store configured the way the stats/trace commands exercise it."""
    config = StoreConfig(
        engine=engine,
        page_size=1024,
        wal=(engine == "tsb"),
        group_commit_size=4 if engine == "tsb" else 1,
        shards=_shard_spec(shards, operations=ops, threads=threads),
    )
    return VersionStore.open(config)


def _run_observed_workload(store, ops: int, threads: int) -> None:
    """A mixed read/write workload plus scatter queries, metrics recording."""
    key_space = max(16, ops // 2)
    pairs = [
        (index % key_space, f"value-{index:06d}".encode()) for index in range(ops)
    ]
    result = run_concurrent(
        store,
        pairs,
        threads=max(1, threads),
        reader_threads=max(1, threads),
        batch_size=8,
        metrics=store.metrics,
    )
    if result.errors:
        raise RuntimeError(f"workload clients failed: {result.errors[:3]}")
    final = store.now
    store.range_search()
    store.snapshot(max(1, final // 2))
    if isinstance(store, ShardedVersionStore):
        store.time_slice(max(1, final // 2), final, 0, key_space // 2)


def _provoke_lock_conflict(store) -> None:
    """Make one transaction demonstrably wait on another (tsb WAL stores).

    ``t2`` blocks on ``t1``'s write lock in a background thread while the
    main thread holds the lock briefly and then commits — after this the
    snapshot's ``lock.waits`` counter and ``lock.wait`` histogram are
    provably non-zero.
    """
    target = store.shard_stores[0] if isinstance(store, ShardedVersionStore) else store
    if target.txns is None:
        return
    t1 = target.begin()
    t1.write(0, b"held")

    def contender() -> None:
        with target.begin() as t2:
            t2.write(0, b"waited")

    blocker = threading.Thread(target=contender, name="stats-lock-contender")
    blocker.start()
    time.sleep(0.05)  # let the contender reach the lock wait
    t1.commit()
    blocker.join()


def _print_stats_table(snapshot: Dict[str, object]) -> None:
    shards = f"  shards: {snapshot['shards']}" if "shards" in snapshot else ""
    print(f"engine: {snapshot['engine']}{shards}")

    metrics = snapshot["metrics"]
    counters = metrics["counters"]
    if counters:
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name:<28} {counters[name]}")

    histograms = {
        name: data
        for name, data in metrics["histograms"].items()
        if data["count"]
    }
    latencies = {
        name: data
        for name, data in histograms.items()
        if name not in _COUNT_HISTOGRAMS
    }
    if latencies:
        print("\nlatencies (ms):")
        print(f"  {'histogram':<28} {'count':>7} {'p50':>9} {'p95':>9} {'p99':>9} {'max':>9}")
        for name in sorted(latencies):
            data = latencies[name]
            print(
                f"  {name:<28} {data['count']:>7}"
                + "".join(
                    f" {data[column] * 1000.0:>9.3f}"
                    for column in ("p50", "p95", "p99", "max")
                )
            )
    for name in sorted(set(histograms) & _COUNT_HISTOGRAMS):
        data = histograms[name]
        buckets = ", ".join(f"<={edge}: {count}" for edge, count in data["buckets"])
        print(f"\n{name}: count={data['count']} avg={data['avg']:.2f} [{buckets}]")

    cache = snapshot.get("cache")
    if cache:
        print(
            f"\ncache: hit_ratio={cache['hit_ratio']:.2%} "
            f"(hits={cache['hits']} misses={cache['misses']} "
            f"evictions={cache['evictions']})"
        )
    wal = snapshot.get("wal")
    if wal:
        print(
            f"wal: last_lsn={wal['last_lsn']} flushed_lsn={wal['flushed_lsn']} "
            f"group_commit_size={wal['group_commit_size']}"
        )
    locks = snapshot.get("locks")
    if isinstance(locks, list):
        held = sum(entry["locked_keys"] for entry in locks)
        waiting = sum(entry["waiting"] for entry in locks)
        print(f"locks: {held} held, {waiting} waiting (across {len(locks)} shards)")
    elif isinstance(locks, dict):
        print(f"locks: {locks['locked_keys']} held, {locks['waiting']} waiting")

    per_shard = snapshot.get("per_shard")
    if per_shard:
        print("\nper-shard op latency p99 (ms):")
        for row in per_shard:
            ops = ", ".join(
                f"{name.split('.', 1)[1]}={data['p99'] * 1000.0:.3f}"
                for name, data in sorted(row["ops"].items())
            )
            print(f"  shard {row['shard']} {row['range']:<24} {ops}")

    io = snapshot.get("io")
    if io:
        print("\nio:")
        for tier in sorted(io):
            stats = io[tier]
            print(
                f"  {tier:<12} reads={stats['reads']} writes={stats['writes']} "
                f"service_time_s={stats['service_time_s']}"
            )


def _render_stats(store, fmt: str) -> None:
    if fmt == "prometheus":
        if isinstance(store, ShardedVersionStore):
            registry = MetricsRegistry.aggregate(
                [store.metrics] + [inner.metrics for inner in store.shard_stores],
                name=store.engine.name,
            )
        else:
            registry = store.metrics
        print(render_prometheus(registry), end="")
    elif fmt == "json":
        print(json.dumps(store.metrics_snapshot(), indent=2, sort_keys=True, default=str))
    else:
        _print_stats_table(store.metrics_snapshot())


def command_stats(args: argparse.Namespace) -> int:
    if args.server:
        return _render_server_stats(args.server, args.format)
    with _open_observed_store(args.engine, args.ops, args.shards, args.threads) as store:
        try:
            while True:
                _run_observed_workload(store, args.ops, args.threads)
                _provoke_lock_conflict(store)
                _render_stats(store, args.format)
                if args.watch is None:
                    break
                time.sleep(args.watch)
                print()
        except KeyboardInterrupt:  # pragma: no cover - interactive --watch exit
            pass
    return 0


def _serve_catalog(args: argparse.Namespace) -> Dict[str, StoreConfig]:
    from repro.server import default_catalog

    tenants = tuple(
        name.strip() for name in args.tenants.split(",") if name.strip()
    ) or ("default",)
    if getattr(args, "self_test", False) and "pipeline" not in tenants:
        # Phase 3 of the self-test replays onto a fresh tenant so its
        # digest is not polluted by the earlier phases' writes.
        tenants = tenants + ("pipeline",)
    return default_catalog(
        tenants,
        engine=args.engine,
        shards=args.shards,
        wal=args.wal,
        scatter_threads=max(1, args.workers),
    )


def _serve_self_test(server, args: argparse.Namespace) -> int:
    """The CI smoke: served answers must equal in-process answers.

    Phase 1 (differential): one deterministic writer applies the same
    batched items through :class:`~repro.client.ReproClient` and through
    an identically configured in-process store; every read surface —
    current range, mid-time snapshot, per-key history — must come back
    record-for-record equal (same :class:`RecordView` objects).

    Phase 2 (concurrent oracle): N writers + M readers drive the *server*
    concurrently; the applied-write oracle must match the served store's
    per-key histories exactly, with zero client errors.

    Phase 3 (pipelined differential): one writer keeps ``--pipeline``
    requests in flight on a single socket against a fresh tenant; a serial
    in-process replay of the same items must produce a byte-identical
    digest over every read surface — proof that pipelining (and the
    server's cross-request coalescing) changes throughput, not answers.
    """
    import hashlib

    from repro.client import ReproClient
    from repro.server import protocol as wire

    ops, threads = args.ops, max(2, args.threads)
    key_space = max(16, ops // 2)
    items = [(index % key_space, f"value-{index:06d}".encode()) for index in range(ops)]
    failures: List[str] = []

    with ReproClient(server.host, server.port, tenant="default", pool_size=threads) as client:
        client.ping()
        served = run_concurrent(target=client, items=items, threads=1, batch_size=4)
        if served.errors:
            failures.append(f"serial client errors: {served.errors[:3]}")
        with VersionStore.open(server.registry.config_for("default")) as local:
            local_run = run_concurrent(local, items, threads=1, batch_size=4)
            if local_run.errors:
                failures.append(f"in-process errors: {local_run.errors[:3]}")
            mid = max(1, local.now // 2)
            checks = [
                ("range_search", client.range_search(), local.range_search()),
                ("snapshot", client.snapshot(mid), local.snapshot(mid)),
            ] + [
                (f"key_history({key})", client.key_history(key), local.key_history(key))
                for key in range(0, key_space, max(1, key_space // 8))
            ]
            for name, over_wire, in_process in checks:
                if over_wire != in_process:
                    failures.append(f"served {name} differs from the in-process answer")
        print(
            f"phase 1: {served.writes} served writes vs in-process — "
            f"{'identical answers' if not failures else 'MISMATCH'}"
        )

    with ReproClient(server.host, server.port, tenant="default", pool_size=threads * 2) as client:
        before = client.now
        result = run_concurrent(
            target=client,
            items=[(key, f"concurrent-{key:06d}".encode()) for key in range(ops)],
            threads=threads,
            reader_threads=threads,
            batch_size=4,
        )
        if result.errors:
            failures.append(f"concurrent client errors: {result.errors[:3]}")
        for key, versions in result.history().items():
            stored = [
                (record.timestamp, record.value)
                for record in client.key_history(key)
                if record.timestamp > before
            ]
            if stored != versions:
                failures.append(f"history oracle mismatch for key {key!r}")
                break
        print(
            f"phase 2: {result.writes} writes ({result.writes_per_s:,.0f}/s) + "
            f"{result.reads} reads from {threads}+{threads} concurrent clients — "
            f"{'oracle-consistent' if not any('oracle' in f or 'concurrent' in f for f in failures) else 'FAILED'}"
        )

    depth = max(1, getattr(args, "pipeline", 16))

    def read_surface_digest(facade, keys: range, mid: int) -> str:
        """SHA-256 over every read surface, serialized with the wire codecs."""
        digest = hashlib.sha256()
        digest.update(wire.pack_records(facade.range_search()))
        snap = facade.snapshot(mid)
        for key in sorted(snap):
            digest.update(wire.pack_optional_record(snap[key]))
        for key in keys:
            digest.update(wire.pack_records(facade.key_history(key)))
        return digest.hexdigest()

    with ReproClient(server.host, server.port, tenant="pipeline", pool_size=1) as client:
        piped = run_concurrent(
            target=client, items=items, threads=1, batch_size=4, pipeline_depth=depth
        )
        if piped.errors:
            failures.append(f"pipelined client errors: {piped.errors[:3]}")
        mid = max(1, client.now // 2)
        served_digest = read_surface_digest(client, range(key_space), mid)
        with VersionStore.open(server.registry.config_for("pipeline")) as local:
            local_run = run_concurrent(local, items, threads=1, batch_size=4)
            if local_run.errors:
                failures.append(f"in-process replay errors: {local_run.errors[:3]}")
            local_digest = read_surface_digest(local, range(key_space), mid)
        if served_digest != local_digest:
            failures.append(
                f"pipelined digest {served_digest[:12]} != in-process {local_digest[:12]}"
            )
        retries = client.counters
        print(
            f"phase 3: {piped.writes} pipelined writes at depth {depth} "
            f"({piped.writes_per_s:,.0f}/s, {retries['client.busy_retries']} busy "
            f"retries) — digest {'match' if served_digest == local_digest else 'MISMATCH'}"
        )

    for failure in failures:
        print(f"FAIL: {failure}")
    print("server self-test: " + ("ok" if not failures else "FAILED"))
    return 1 if failures else 0


def command_serve(args: argparse.Namespace) -> int:
    from repro.server import ReproServer

    server = ReproServer(
        _serve_catalog(args),
        host=args.host,
        port=args.port if not args.self_test else 0,
        workers=max(1, args.workers),
        max_inflight=args.max_inflight,
    )
    if args.self_test:
        with server:
            print(f"serving {', '.join(server.registry.tenants())} on {server.host}:{server.port}")
            return _serve_self_test(server, args)
    print(
        f"serving tenants [{', '.join(server.registry.tenants())}] "
        f"on {args.host}:{args.port} (engine={args.engine}, shards={args.shards}, "
        f"wal={args.wal}) — Ctrl-C to stop"
    )
    server.serve_forever()
    return 0


def command_failover(args: argparse.Namespace) -> int:
    """Kill a replicated primary mid-workload; verify the promoted replica.

    The end-to-end failover check (and the CI ``replication-smoke`` job):

    1. a sharded WAL store replicates to ``--replicas`` live followers;
    2. a writer streams ``--ops`` single-item batches while, at roughly
       60% of the workload, the primary is killed abruptly mid-stream;
    3. the surviving replica with the longest durable prefix is elected
       and promoted;
    4. the promoted store's *entire read surface* (snapshots at every
       commit time, per-key histories, the full range scan) is digested
       and compared against an independent oracle: a fresh store built by
       replaying the winner's mirrored log bytes from scratch;
    5. a post-failover write must land on the promoted store.

    Exit status 0 only if the digests match and the write succeeds.
    """
    from repro.analysis.experiment import answers_digest
    from repro.api.adapters import TSBEngine
    from repro.api.sharded import ShardedEngine
    from repro.replication import ReplicationPrimary, Replica, elect, replay_device

    shard_count = max(1, args.shards)
    spec = _shard_spec(shard_count, args.ops * 2) if shard_count > 1 else None
    config = StoreConfig(
        engine="tsb",
        wal=True,
        group_commit_size=args.group_commit,
        shards=spec,
    )
    store = VersionStore.open(config)
    primary = ReplicationPrimary(store)
    primary.start()
    replicas = [
        Replica(primary.host, primary.port, name=f"replica{i}").start()
        for i in range(max(1, args.replicas))
    ]
    print(
        f"failover: primary on {primary.host}:{primary.port}, "
        f"{len(replicas)} replicas, {args.ops} ops, {shard_count} shard(s)"
    )

    kill_at = max(1, int(args.ops * 0.6))
    written: List[int] = []
    keys: List[int] = []
    for i in range(args.ops):
        stamps = store.put_many([(i % max(1, args.ops // 3), f"v{i}".encode())])
        written.extend(stamps)
        keys.append(i % max(1, args.ops // 3))
        if i == kill_at:
            primary.kill()
            print(f"  primary killed mid-workload after {i + 1} ops")
    # Writes after the kill never replicated: they are the crash's lost
    # tail, which the promoted replica must NOT serve.
    time.sleep(0.05)
    for replica in replicas:
        replica.stop()

    winner = elect(replicas)
    lsns = {replica.name: replica.durable_lsns() for replica in replicas}
    print(f"  durable prefixes: {lsns}; electing {winner.name}")
    promoted = winner.promote()

    # The oracle: replay the winner's mirrored bytes from scratch into
    # fresh trees and rebuild an equivalent store over them.
    oracle_inner: List[VersionStore] = []
    oracle_keys: List[set] = []
    inner_config = StoreConfig(engine="tsb", page_size=config.page_size)
    for state in winner._states:
        replayer = replay_device(state.mirror)
        oracle_inner.append(VersionStore(TSBEngine(replayer.tree), inner_config))
        oracle_keys.append(set(replayer.keys_applied))
    if spec is None:
        oracle: VersionStore = oracle_inner[0]
    else:
        boundaries = list(winner._boundaries)
        oracle = ShardedVersionStore(
            ShardedEngine(
                oracle_inner,
                boundaries,
                ShardSpec(boundaries=tuple(boundaries)),
                inner_config,
                shard_keys=oracle_keys,
            ),
            config,
        )

    probe_keys = sorted(set(keys))
    probe_times = sorted(set(written))[:: max(1, len(written) // 64)]
    promoted_digest = answers_digest(promoted, probe_keys, probe_times)
    oracle_digest = answers_digest(oracle, probe_keys, probe_times)
    match = promoted_digest == oracle_digest
    print(
        f"  promoted digest {promoted_digest:#010x} "
        f"{'==' if match else '!='} oracle digest {oracle_digest:#010x}"
    )

    post_key = 1_000_000_000  # integer keyspace: route to the last shard
    stamp = promoted.put_many([(post_key, b"post-failover")])[0]
    write_ok = promoted.get(post_key) is not None
    print(f"  post-failover write stamped at t={stamp}: {'ok' if write_ok else 'LOST'}")

    promoted.close()
    store.close()
    if match and write_ok:
        print("FAILOVER OK: promoted replica serves exactly its durable prefix")
        return 0
    print("FAILOVER MISMATCH: promoted state diverges from the mirrored log")
    return 1


def _render_server_stats(address: str, fmt: str) -> int:
    from repro.client import ReproClient

    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"--server expects HOST:PORT, got {address!r}")
        return 2
    with ReproClient(host, int(port_text), pool_size=1) as client:
        if fmt == "prometheus":
            print(client.stats("prometheus"), end="")
        else:  # table has no wire shape; JSON is the faithful rendering
            print(json.dumps(client.stats("json"), indent=2, sort_keys=True))
    return 0


def command_trace(args: argparse.Namespace) -> int:
    if args.op == "time_slice" and args.shards <= 1:
        print("trace: time_slice is a sharded-store query; use --shards >= 2")
        return 2
    previous = trace.set_enabled(True)
    try:
        with _open_observed_store(args.engine, args.ops, args.shards, args.threads) as store:
            key_space = max(16, args.ops // 2)
            store.put_many(
                [(index % key_space, f"seed-{index:06d}".encode()) for index in range(args.ops)]
            )
            final = store.now
            trace.clear()  # the exported file shows only the traced op
            with trace.span(f"cli.{args.op}"):
                if args.op == "time_slice":
                    store.time_slice(max(1, final // 2), final, 0, key_space // 2)
                elif args.op == "range":
                    store.range_search()
                elif args.op == "snapshot":
                    store.snapshot(max(1, final // 2))
                elif args.op == "put_many":
                    store.put_many([(key, b"traced") for key in range(32)])
                else:
                    for key in range(32):
                        store.get(key % key_space)
            recorded = len(trace.spans())
            path = trace.export(args.out or f"trace_{args.op}.json")
    finally:
        trace.set_enabled(previous)
    print(f"{recorded} spans -> {path} (open in chrome://tracing or Perfetto)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Time-Split B-tree reproduction (Lomet & Salzberg, SIGMOD 1989)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser("figures", help="re-run the paper's Figures 1-9")
    figures.add_argument(
        "--engine",
        choices=("all",) + ENGINE_NAMES,
        default="all",
        help="only the figures exercising this engine (default: all)",
    )
    figures.set_defaults(handler=command_figures)

    study = subparsers.add_parser("study", help="run one of the studies S1..S7 (or 'all')")
    study.add_argument("name", help="study id: S1..S7 or 'all'")
    study.add_argument(
        "--ops",
        type=int,
        default=3_000,
        help="workload size in operations (default: 3000)",
    )
    study.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="tsb",
        help="access method the workload runs on, via VersionStore (default: tsb)",
    )
    study.add_argument(
        "--shards",
        type=int,
        default=1,
        help="key-range-partition the store across N shards (default: 1)",
    )
    study.add_argument(
        "--threads",
        type=int,
        default=1,
        help="scatter-gather thread-pool size for sharded stores (default: 1)",
    )
    study.set_defaults(handler=command_study)

    demo = subparsers.add_parser("demo", help="a one-minute end-to-end demonstration")
    demo.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="tsb",
        help="access method to demonstrate, via VersionStore (default: tsb)",
    )
    demo.add_argument(
        "--shards",
        type=int,
        default=1,
        help="key-range-partition the demo store across N shards (default: 1)",
    )
    demo.add_argument(
        "--threads",
        type=int,
        default=1,
        help="also run N concurrent writer + N reader client threads "
        "(and size the sharded scatter-gather pool; default: 1)",
    )
    demo.set_defaults(handler=command_demo)

    crash_demo = subparsers.add_parser(
        "crash-demo", help="narrated WAL + group commit + crash recovery demo"
    )
    crash_demo.set_defaults(handler=command_crash_demo)

    recover = subparsers.add_parser(
        "recover", help="run a randomized crash-recovery trial and verify it"
    )
    recover.add_argument(
        "--ops", type=int, default=60, help="scripted transactional steps (default: 60)"
    )
    recover.add_argument(
        "--seed", type=int, default=1989, help="script random seed (default: 1989)"
    )
    recover.add_argument(
        "--keys", type=int, default=8, help="key-space size (default: 8)"
    )
    recover.add_argument(
        "--batch", type=int, default=1, help="group-commit batch size (default: 1)"
    )
    recover.add_argument(
        "--crash-at",
        type=int,
        default=None,
        help="crash after this many steps (default: try every step)",
    )
    recover.add_argument(
        "--verbose", action="store_true", help="print a line per crash point"
    )
    recover.set_defaults(handler=command_recover)

    stats = subparsers.add_parser(
        "stats", help="run a mixed workload and print the observability snapshot"
    )
    stats.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="tsb",
        help="access method to observe (default: tsb, with WAL + group commit)",
    )
    stats.add_argument(
        "--ops", type=int, default=2_000, help="workload writes (default: 2000)"
    )
    stats.add_argument(
        "--shards",
        type=int,
        default=4,
        help="key-range shards; >1 exercises scatter-gather (default: 4)",
    )
    stats.add_argument(
        "--threads",
        type=int,
        default=4,
        help="client writer/reader threads and scatter pool size (default: 4)",
    )
    stats.add_argument(
        "--format",
        choices=("table", "json", "prometheus"),
        default="table",
        help="snapshot rendering (default: table)",
    )
    stats.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-run the workload and reprint every SECONDS until Ctrl-C",
    )
    stats.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="fetch a running `repro serve` instance's stats instead of "
        "driving a local workload (--format json|prometheus)",
    )
    stats.set_defaults(handler=command_stats)

    serve = subparsers.add_parser(
        "serve", help="serve the version store over TCP (see repro.server)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=7089, help="listen port (default: 7089; 0 = ephemeral)"
    )
    serve.add_argument(
        "--tenants",
        default="default",
        help="comma-separated tenant catalog (default: 'default')",
    )
    serve.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="tsb",
        help="engine behind every tenant (default: tsb)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="key-range shards per tenant over the integer key domain (default: 1)",
    )
    serve.add_argument(
        "--wal",
        action="store_true",
        help="attach a write-ahead log with group commit (tsb only)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="store worker threads bridging the event loop (default: 4)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission-control cap on concurrently executing requests (default: 64)",
    )
    serve.add_argument(
        "--self-test",
        action="store_true",
        help="start on an ephemeral port, run the oracle-checked client "
        "workload against an in-process run, exit 0/1 (the CI smoke)",
    )
    serve.add_argument(
        "--ops",
        type=int,
        default=600,
        help="self-test workload size in writes (default: 600)",
    )
    serve.add_argument(
        "--threads",
        type=int,
        default=4,
        help="self-test concurrent writer/reader client threads (default: 4)",
    )
    serve.add_argument(
        "--pipeline",
        type=int,
        default=16,
        help="self-test phase-3 pipeline depth: requests kept in flight "
        "per writer on one socket (default: 16)",
    )
    serve.set_defaults(handler=command_serve)

    trace_cmd = subparsers.add_parser(
        "trace", help="record one operation's spans and export Chrome trace JSON"
    )
    trace_cmd.add_argument(
        "op",
        nargs="?",
        choices=("time_slice", "range", "snapshot", "put_many", "get"),
        default="time_slice",
        help="operation to trace (default: time_slice, one span per shard)",
    )
    trace_cmd.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="tsb",
        help="access method to trace (default: tsb)",
    )
    trace_cmd.add_argument(
        "--ops", type=int, default=1_200, help="seed writes before tracing (default: 1200)"
    )
    trace_cmd.add_argument(
        "--shards", type=int, default=4, help="key-range shards (default: 4)"
    )
    trace_cmd.add_argument(
        "--threads", type=int, default=4, help="scatter-gather pool size (default: 4)"
    )
    trace_cmd.add_argument(
        "--out",
        default=None,
        help="output path (default: trace_<op>.json in the current directory)",
    )
    trace_cmd.set_defaults(handler=command_trace)

    failover = subparsers.add_parser(
        "failover",
        help="replicate a WAL store, kill the primary mid-workload, promote "
        "a replica and verify it against the mirrored-log oracle",
    )
    failover.add_argument(
        "--replicas", type=int, default=2, help="follower count (default: 2)"
    )
    failover.add_argument(
        "--ops", type=int, default=600, help="writes before/around the kill (default: 600)"
    )
    failover.add_argument(
        "--shards", type=int, default=4, help="key-range shards (default: 4)"
    )
    failover.add_argument(
        "--group-commit",
        type=int,
        default=4,
        help="primary group-commit batch size (default: 4)",
    )
    failover.set_defaults(handler=command_failover)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
