"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

Design constraints, in order:

* **Zero hot-path cost when disabled.**  Every registry-level recording
  helper (:meth:`MetricsRegistry.inc` / :meth:`~MetricsRegistry.observe` /
  :meth:`~MetricsRegistry.timer`) checks the module switch first and does
  nothing (or returns a shared no-op timer) when observability is off.
  Instrumented code never needs its own flag.
* **Cheap when enabled.**  A histogram record is one ``bisect`` over ~20
  bucket bounds plus a few integer adds under a per-histogram lock; a timer
  is two ``perf_counter`` calls around that.  The registry's name->object
  maps are read lock-free on the hot path (CPython dict reads are atomic)
  and only locked to create.
* **Aggregatable.**  Registries merge: the sharded store sums its shard
  registries into one view, and closed stores retire their histograms into
  a process-wide *session* accumulator so the benchmark harness can embed
  latency distributions in ``BENCH_<name>.json`` even after every store of
  a run has been closed and garbage-collected.

Percentiles come from linear interpolation inside the bucket that contains
the requested rank — the standard fixed-bucket estimate (what Prometheus'
``histogram_quantile`` computes server-side), good to a bucket's width.
"""

from __future__ import annotations

import threading
import time
import weakref
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Module-level switch: when False, every recording helper is a no-op.
_ENABLED = True


def enabled() -> bool:
    """Whether metrics recording is currently on."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Turn metrics recording on or off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


#: Default latency bucket upper bounds in seconds: a 1-2-5 geometric ladder
#: from 1 microsecond to 10 seconds (values above fall into the overflow
#: bucket, whose upper edge is the observed maximum).
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6,
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0,
)

#: Bucket bounds for small cardinalities (group-commit batch sizes,
#: scatter-gather fan-out widths).
COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket distribution with interpolated percentiles.

    ``bounds`` are ascending bucket *upper* edges; one overflow bucket
    catches everything above the last bound.  All mutation happens under a
    per-histogram lock, so one histogram can be shared by many threads.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "max_value", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty ascending sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value > self.max_value:
                self.max_value = value

    def time(self) -> "Timer":
        """A context manager recording its ``with`` body's wall time here."""
        return Timer(self)

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other``'s distribution into this one (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket bounds differ"
            )
        with other._lock:
            counts = list(other.counts)
            count = other.count
            total = other.total
            max_value = other.max_value
        with self._lock:
            for index, bucket in enumerate(counts):
                self.counts[index] += bucket
            self.count += count
            self.total += total
            if max_value > self.max_value:
                self.max_value = max_value

    def percentile(self, quantile: float) -> float:
        """The value at ``quantile`` (0..1), interpolated within its bucket."""
        with self._lock:
            counts = list(self.counts)
            count = self.count
            max_value = self.max_value
        return _interpolate(self.bounds, counts, count, max_value, quantile)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready summary: count, sum, avg, max, p50/p95/p99, buckets."""
        with self._lock:
            counts = list(self.counts)
            count = self.count
            total = self.total
            max_value = self.max_value
        buckets = [
            [self.bounds[index] if index < len(self.bounds) else "+Inf", bucket]
            for index, bucket in enumerate(counts)
            if bucket
        ]
        return {
            "count": count,
            "sum": round(total, 9),
            "avg": round(total / count, 9) if count else 0.0,
            "max": round(max_value, 9),
            "p50": round(_interpolate(self.bounds, counts, count, max_value, 0.50), 9),
            "p95": round(_interpolate(self.bounds, counts, count, max_value, 0.95), 9),
            "p99": round(_interpolate(self.bounds, counts, count, max_value, 0.99), 9),
            "buckets": buckets,
        }


def _interpolate(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    max_value: float,
    quantile: float,
) -> float:
    if count == 0:
        return 0.0
    target = max(1e-12, quantile) * count
    cumulative = 0
    for index, bucket in enumerate(counts):
        if bucket and cumulative + bucket >= target:
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index] if index < len(bounds) else max(max_value, lower)
            fraction = (target - cumulative) / bucket
            return lower + (upper - lower) * fraction
        cumulative += bucket
    return max_value


class _NoopTimer:
    """Shared do-nothing timer handed out while metrics are disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NOOP_TIMER = _NoopTimer()


class Timer:
    """Context manager recording its ``with`` body's wall time."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._histogram.record(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """One store's (or one subsystem's) named metrics.

    ``register=False`` keeps a registry out of the process-wide session
    bookkeeping — used for transient aggregation results.
    """

    def __init__(self, name: str = "store", register: bool = True) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._retired = False
        if register:
            with _SESSION_LOCK:
                _LIVE.add(self)

    # ------------------------------------------------------------------
    # Instrument lookup (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, bounds=bounds or LATENCY_BUCKETS)
                )
        return instrument

    # ------------------------------------------------------------------
    # Recording (each helper is a no-op while metrics are disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        if _ENABLED:
            self.counter(name).inc(amount)

    def observe(
        self, name: str, value: float, bounds: Optional[Sequence[float]] = None
    ) -> None:
        if _ENABLED:
            self.histogram(name, bounds=bounds).record(value)

    def set_gauge(self, name: str, value: float) -> None:
        if _ENABLED:
            self.gauge(name).set(value)

    def timer(self, name: str):
        """Time a ``with`` body into the named latency histogram."""
        if not _ENABLED:
            return NOOP_TIMER
        return Timer(self.histogram(name))

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {name: counter.value for name, counter in self._counters.items()}

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return {name: gauge.value for name, gauge in self._gauges.items()}

    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def snapshot(self) -> Dict[str, object]:
        """Everything recorded so far, as one nested JSON-ready dict."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.histograms().items())
            },
        }

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s counters, gauges and histograms into this one."""
        for name, value in other.counters().items():
            self.counter(name).inc(value)
        for name, value in other.gauges().items():
            self.gauge(name).add(value)
        for name, histogram in other.histograms().items():
            self.histogram(name, bounds=histogram.bounds).merge_from(histogram)

    @classmethod
    def aggregate(
        cls, registries: Iterable["MetricsRegistry"], name: str = "aggregate"
    ) -> "MetricsRegistry":
        """A transient registry holding the element-wise sum of ``registries``."""
        merged = cls(name=name, register=False)
        for registry in registries:
            merged.merge_from(registry)
        return merged

    def retire(self) -> None:
        """Fold this registry into the session accumulator (store close).

        Idempotent: a registry retires at most once, so re-closing a store
        never double-counts its distributions.
        """
        with _SESSION_LOCK:
            if self._retired:
                return
            self._retired = True
        _SESSION.merge_from(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(name={self.name!r}, "
            f"counters={len(self._counters)}, histograms={len(self._histograms)})"
        )


# ----------------------------------------------------------------------
# Session accumulation: what the benchmark harness embeds in BENCH JSON
# ----------------------------------------------------------------------
_SESSION_LOCK = threading.Lock()
_SESSION = MetricsRegistry(name="session", register=False)
_LIVE: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def session_histograms() -> Dict[str, Dict[str, object]]:
    """Process-wide latency distributions: retired stores plus live ones.

    Stores fold their registries into the session accumulator when closed
    (:meth:`MetricsRegistry.retire`); still-open stores are summed in live.
    Only histograms with at least one observation are reported.
    """
    merged = MetricsRegistry(name="session-view", register=False)
    with _SESSION_LOCK:
        live = [registry for registry in _LIVE if not registry._retired]
    merged.merge_from(_SESSION)
    for registry in live:
        merged.merge_from(registry)
    return {
        name: histogram.snapshot()
        for name, histogram in sorted(merged.histograms().items())
        if histogram.count
    }


def reset_session() -> None:
    """Forget every session accumulation (test isolation)."""
    with _SESSION_LOCK:
        _SESSION._counters.clear()
        _SESSION._gauges.clear()
        _SESSION._histograms.clear()
        _LIVE.clear()
