"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

One function, no dependency: :func:`render_prometheus` renders counters,
gauges and histograms in the classic text exposition format (the format
every Prometheus scraper and ``promtool`` accepts).  Metric names are
sanitized (dots become underscores), counters get the conventional
``_total`` suffix, and histograms emit the cumulative ``_bucket{le=...}``
series plus ``_sum`` and ``_count`` — so ``histogram_quantile()`` works on
the server exactly as the in-process percentile estimate does locally.
"""

from __future__ import annotations

import re
from typing import List

from repro.obs.registry import MetricsRegistry

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    cleaned = _INVALID.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """The registry's current state in Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in sorted(registry.counters().items()):
        metric = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(registry.gauges().items()):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, histogram in sorted(registry.histograms().items()):
        metric = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} histogram")
        with histogram._lock:
            counts = list(histogram.counts)
            count = histogram.count
            total = histogram.total
        cumulative = 0
        for index, bound in enumerate(histogram.bounds):
            cumulative += counts[index]
            lines.append(
                f'{metric}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {repr(round(total, 9))}")
        lines.append(f"{metric}_count {count}")
    return "\n".join(lines) + "\n"
