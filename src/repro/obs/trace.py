"""Lightweight span tracing with Chrome ``trace_event`` export.

A *span* is one timed region of one thread — ``with trace.span("tsb.split",
node=7):`` — carrying a name, free-form attributes, and a link to the span
it was opened under.  Finished spans land in a bounded in-memory ring; the
ring exports as Chrome's JSON ``trace_event`` format, so a ``put_many`` or
a parallel ``time_slice`` can be opened in ``chrome://tracing`` (or
https://ui.perfetto.dev) and read as a flame chart.

Parent/child links are per-thread (a thread-local stack of open span ids),
with one escape hatch for thread pools: :func:`current_id` captures the
submitting thread's innermost span and :func:`attach` adopts it inside the
worker, so the sharded store's scatter-gather tasks appear as children of
the query that fanned them out — one tree across threads.

Tracing defaults **off** and has its own switch (:func:`set_enabled`),
independent of the metrics switch: metrics are cheap enough to keep on,
span bookkeeping is paid only when someone is about to export a trace.
While disabled, :func:`span` returns a shared no-op context manager.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional

_ENABLED = False


def enabled() -> bool:
    """Whether span recording is currently on."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Turn span recording on or off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


class Span:
    """One finished span: name, timing, thread, parent link, attributes."""

    __slots__ = ("name", "span_id", "parent_id", "thread", "start", "duration", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        thread: int,
        start: float,
        duration: float,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.start = start
        self.duration = duration
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"duration={self.duration * 1e3:.3f}ms)"
        )


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """A bounded ring of finished spans plus the per-thread open-span stacks."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be positive")
        self.capacity = capacity
        self._finished: "deque[Span]" = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Optional[int]]:
        """Open a span for the ``with`` body; records it when the body exits."""
        if not _ENABLED:
            yield None
            return
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        span_id = next(self._ids)
        stack.append(span_id)
        start = time.perf_counter()
        try:
            yield span_id
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            record = Span(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                thread=threading.get_ident(),
                start=start,
                duration=duration,
                attrs=dict(attrs),
            )
            with self._lock:
                self._finished.append(record)

    def current_id(self) -> Optional[int]:
        """The innermost open span on *this* thread (None outside any span)."""
        if not _ENABLED:
            return None
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def attach(self, parent_id: Optional[int]) -> Iterator[None]:
        """Adopt ``parent_id`` as this thread's current span for the body.

        The cross-thread propagation primitive: capture
        :meth:`current_id` on the submitting thread, ``attach`` it inside
        the pool worker, and spans opened in the worker parent correctly.
        """
        if not _ENABLED or parent_id is None:
            yield
            return
        stack = self._stack()
        stack.append(parent_id)
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------------------
    # Inspection / export
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans, oldest first (bounded by the ring capacity)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def chrome_trace(self) -> Dict[str, object]:
        """The ring as a Chrome ``trace_event`` document (complete events)."""
        spans = self.spans()
        base = min((span.start for span in spans), default=0.0)
        tids: Dict[int, int] = {}
        events = []
        for span in sorted(spans, key=lambda item: item.start):
            tid = tids.setdefault(span.thread, len(tids) + 1)
            args: Dict[str, object] = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": round((span.start - base) * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path) -> Path:
        """Write the ring as Chrome trace JSON; returns the written path."""
        target = Path(path)
        target.write_text(json.dumps(self.chrome_trace(), indent=2, default=str) + "\n")
        return target


#: The process-wide default tracer every module-level helper drives.
_TRACER = Tracer()


def span(name: str, **attrs: object):
    """Open a span on the default tracer (a shared no-op while disabled)."""
    if not _ENABLED:
        return _NOOP_SPAN
    return _TRACER.span(name, **attrs)


def current_id() -> Optional[int]:
    return _TRACER.current_id()


def attach(parent_id: Optional[int]):
    return _TRACER.attach(parent_id)


def spans() -> List[Span]:
    return _TRACER.spans()


def clear() -> None:
    _TRACER.clear()


def chrome_trace() -> Dict[str, object]:
    return _TRACER.chrome_trace()


def export(path) -> Path:
    return _TRACER.export(path)
