"""Zero-dependency observability: metrics, spans and exposition.

The paper's argument is a *cost* argument — current-data lookups must touch
only the magnetic tier while historical queries pay optical seeks — and the
rest of the stack (latches, record locks, group commit, scatter-gather)
exists to keep that cost model honest under concurrency.  This package makes
the whole stack observable without adding any dependency:

:mod:`repro.obs.registry`
    Thread-safe :class:`~repro.obs.registry.MetricsRegistry` with counters,
    gauges and fixed-bucket latency histograms (p50/p95/p99 via bucket
    interpolation).  One registry per store, aggregatable across shards.
    A module-level switch (:func:`~repro.obs.registry.set_enabled`) turns
    every recording site into a no-op.

:mod:`repro.obs.trace`
    Lightweight span API (``with trace.span("tsb.split", key=...)``)
    recording a bounded in-memory ring of spans with parent/child links,
    exportable as Chrome ``trace_event`` JSON.  Spans propagate across the
    sharded store's scatter-gather thread pool, so a parallel ``time_slice``
    appears as one tree.  Tracing has its own switch and defaults *off*.

:mod:`repro.obs.prometheus`
    Text-format exposition of a registry for scrapers.

Surface: ``store.metrics_snapshot()`` (nested dict), ``python -m repro
stats`` (one-shot or ``--watch``) and ``python -m repro trace <op>``.
"""

from repro.obs.registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    reset_session,
    session_histograms,
    set_enabled,
)
from repro.obs.prometheus import render_prometheus
from repro.obs import trace

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "render_prometheus",
    "reset_session",
    "session_histograms",
    "set_enabled",
    "trace",
]
