"""Record locks for updating transactions (paper section 4).

The paper's section 4 only requires locks for *updaters*; read-only
transactions run entirely without them (section 4.1).  This module provides
the record-lock manager the transaction manager needs, grown from the
original fail-fast stub into a real concurrent lock manager:

* **Modes.**  :attr:`LockMode.SHARED` is compatible with other shared
  holders; :attr:`LockMode.EXCLUSIVE` is compatible with nothing.  The
  transaction manager takes exclusive locks on every key an updater writes
  and holds them until commit or abort (strict two-phase locking on write
  sets); shared locks are available for updaters that want repeatable reads
  of keys they do not write.  An exclusive holder may re-request either
  mode for free, and a transaction that is the *sole* shared holder may
  upgrade to exclusive.

* **Blocking with timeout.**  A conflicting request blocks until the
  holders release, the per-call (or manager-default) timeout expires, or a
  deadlock is detected.  Timeouts raise :class:`LockConflictError` with
  ``reason="timeout"``.

* **Deadlock detection.**  While blocked, a transaction registers
  wait-for edges to the current incompatible holders.  Each new waiter runs
  a depth-first search over the wait-for graph; if the search returns to
  the requester, the requester is the victim and its
  :class:`LockConflictError` carries the cycle (``reason="deadlock"``,
  ``cycle=(requester, ..., last)``).  Sleeping waiters refresh their edges
  and re-run their own cycle check on every wake-up — grants notify the
  sleepers, and waits are sliced so a refresh happens within
  ``EDGE_REFRESH_INTERVAL`` regardless — so a cycle closed *through a
  holder granted after a waiter went to sleep* is still found.  The victim
  is whichever transaction in the cycle checks first: the newcomer in the
  common case, a refreshing sleeper otherwise; either way exactly one
  victim is chosen (detection is serialized on the manager's condition)
  and the survivors proceed once the victim's locks are released.

* **Same-thread fail-fast.**  When the blocking holder's lock was taken by
  the *same OS thread* as the requester, blocking can never resolve — the
  thread cannot release a lock while it is asleep waiting for it.  This is
  a genuine (thread-level) deadlock, detected immediately, and it is also
  exactly the situation single-threaded simulations create, so the
  original stub's fail-fast behaviour is preserved where it was correct.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.registry import enabled as metrics_enabled
from repro.storage.serialization import Key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.obs.registry import MetricsRegistry

#: Upper bound on how long a sleeping waiter goes without refreshing its
#: wait-for edges and re-running its cycle check.  Grants notify sleepers
#: immediately; the slice is the backstop for notify/schedule races.
EDGE_REFRESH_INTERVAL = 0.05


class LockMode(enum.Enum):
    """Lock modes, ordered by strength."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def covers(self, other: "LockMode") -> bool:
        """Whether holding this mode already satisfies a request for ``other``."""
        return self is LockMode.EXCLUSIVE or other is LockMode.SHARED


class LockConflictError(Exception):
    """A lock request failed: conflict, timeout or deadlock.

    Attributes
    ----------
    key, holder, requester:
        The contested key, one blocking holder and the requesting
        transaction (the original stub's fields, kept for compatibility).
    holders:
        Every transaction that was blocking the request.
    cycle:
        For ``reason="deadlock"``, the wait-for cycle as a tuple of
        transaction ids starting with the victim (the requester); empty
        otherwise.
    reason:
        ``"conflict"`` (same-thread fail-fast), ``"timeout"`` or
        ``"deadlock"``.
    """

    def __init__(
        self,
        key: Key,
        holder: Optional[int],
        requester: int,
        holders: Sequence[int] = (),
        cycle: Sequence[int] = (),
        reason: str = "conflict",
    ) -> None:
        detail = {
            "conflict": f"held by transaction {holder}",
            "timeout": f"timed out waiting for transaction {holder}",
            "deadlock": "deadlock cycle "
            + " -> ".join(str(txn) for txn in tuple(cycle) + tuple(cycle[:1])),
        }.get(reason, f"held by transaction {holder}")
        super().__init__(
            f"transaction {requester} cannot lock key {key!r}: {detail}"
        )
        self.key = key
        self.holder = holder
        self.requester = requester
        self.holders = tuple(holders) if holders else ((holder,) if holder is not None else ())
        self.cycle = tuple(cycle)
        self.reason = reason


class LockManager:
    """Shared/exclusive per-key locks with blocking, timeout and deadlock
    detection.

    Parameters
    ----------
    timeout:
        Default seconds a conflicting :meth:`acquire` waits before raising
        :class:`LockConflictError` (``reason="timeout"``).  Per-call
        ``timeout=`` overrides it; ``None`` means wait forever (deadlock
        detection still applies).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  When given,
        contended acquires time their wait into ``lock.wait`` and count
        ``lock.waits``; failures count ``lock.conflicts``,
        ``lock.deadlocks`` and ``lock.timeouts``.
    """

    def __init__(
        self,
        timeout: Optional[float] = 5.0,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.timeout = timeout
        self._metrics = metrics
        self._cond = threading.Condition()
        #: key -> {txn_id: strongest mode held}
        self._holders: Dict[Key, Dict[int, LockMode]] = {}
        self._held_by_txn: Dict[int, Set[Key]] = {}
        #: txn_id -> txns it is currently blocked on (wait-for graph edges)
        self._waits_for: Dict[int, Set[int]] = {}
        #: txn_id -> ident of the OS thread that last acquired for it
        self._txn_thread: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire(
        self,
        txn_id: int,
        key: Key,
        mode: LockMode = LockMode.EXCLUSIVE,
        timeout: Optional[float] = ...,  # type: ignore[assignment]
    ) -> None:
        """Take (or strengthen) the lock on ``key`` for ``txn_id``.

        Blocks while incompatible holders exist; raises
        :class:`LockConflictError` on timeout, on a wait-for-graph cycle
        (the requester is the victim and the error carries the cycle), or
        immediately when a blocking holder was acquired by this very
        thread, which could therefore never be released.
        """
        if timeout is ...:
            timeout = self.timeout
        me = threading.get_ident()
        deadline = None if timeout is None else time.monotonic() + timeout
        record = self._metrics is not None and metrics_enabled()
        waited_from: Optional[float] = None
        with self._cond:
            self._txn_thread[txn_id] = me
            try:
                while True:
                    blockers = self._blockers(txn_id, key, mode)
                    if not blockers:
                        self._grant(txn_id, key, mode)
                        if record and waited_from is not None:
                            self._metrics.inc("lock.waits")
                            self._metrics.observe(
                                "lock.wait", time.perf_counter() - waited_from
                            )
                        return
                    first = blockers[0]
                    same_thread = [
                        blocker
                        for blocker in blockers
                        if self._txn_thread.get(blocker) == me
                    ]
                    if same_thread:
                        if record:
                            self._metrics.inc("lock.conflicts")
                        raise LockConflictError(
                            key=key,
                            holder=same_thread[0],
                            requester=txn_id,
                            holders=blockers,
                            reason="conflict",
                        )
                    self._waits_for[txn_id] = set(blockers)
                    cycle = self._find_cycle(txn_id)
                    if cycle is not None:
                        if record:
                            self._metrics.inc("lock.deadlocks")
                        raise LockConflictError(
                            key=key,
                            holder=first,
                            requester=txn_id,
                            holders=blockers,
                            cycle=cycle,
                            reason="deadlock",
                        )
                    # Sliced waits: wake at least every EDGE_REFRESH_INTERVAL
                    # to refresh the wait-for edges against holders granted
                    # while asleep and re-run the cycle check above.  Only
                    # the caller's deadline — never a slice expiry — times
                    # the request out.
                    if waited_from is None:
                        waited_from = time.perf_counter()
                    if deadline is None:
                        self._cond.wait(EDGE_REFRESH_INTERVAL)
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            if record:
                                self._metrics.inc("lock.timeouts")
                            raise LockConflictError(
                                key=key,
                                holder=first,
                                requester=txn_id,
                                holders=blockers,
                                reason="timeout",
                            )
                        self._cond.wait(min(remaining, EDGE_REFRESH_INTERVAL))
            finally:
                self._waits_for.pop(txn_id, None)

    def acquire_exclusive(
        self, txn_id: int, key: Key, timeout: Optional[float] = ...  # type: ignore[assignment]
    ) -> None:
        """Take (or re-take) the exclusive lock on ``key`` for ``txn_id``."""
        self.acquire(txn_id, key, LockMode.EXCLUSIVE, timeout=timeout)

    def acquire_shared(
        self, txn_id: int, key: Key, timeout: Optional[float] = ...  # type: ignore[assignment]
    ) -> None:
        """Take a shared lock on ``key`` for ``txn_id``."""
        self.acquire(txn_id, key, LockMode.SHARED, timeout=timeout)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release_all(self, txn_id: int) -> None:
        """Drop every lock held by ``txn_id`` (commit or abort)."""
        with self._cond:
            for key in self._held_by_txn.pop(txn_id, set()):
                holders = self._holders.get(key)
                if holders is not None and holders.pop(txn_id, None) is not None:
                    if not holders:
                        del self._holders[key]
            self._waits_for.pop(txn_id, None)
            self._txn_thread.pop(txn_id, None)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holder_of(self, key: Key) -> Optional[int]:
        """The transaction holding ``key`` exclusively, if any."""
        with self._cond:
            for txn_id, mode in self._holders.get(key, {}).items():
                if mode is LockMode.EXCLUSIVE:
                    return txn_id
            return None

    def holders_of(self, key: Key) -> Dict[int, LockMode]:
        """Every holder of ``key`` and the mode it holds."""
        with self._cond:
            return dict(self._holders.get(key, {}))

    def mode_held(self, txn_id: int, key: Key) -> Optional[LockMode]:
        with self._cond:
            return self._holders.get(key, {}).get(txn_id)

    def locks_held(self, txn_id: int) -> Set[Key]:
        with self._cond:
            return set(self._held_by_txn.get(txn_id, set()))

    @property
    def locked_key_count(self) -> int:
        with self._cond:
            return len(self._holders)

    def waiting_transactions(self) -> Dict[int, Set[int]]:
        """A snapshot of the wait-for graph (tests and diagnostics)."""
        with self._cond:
            return {txn: set(edges) for txn, edges in self._waits_for.items()}

    def debug_state(self) -> Dict[str, object]:
        """A read-only snapshot of holders and the wait-for graph.

        Until now a deadlock's ``.cycle`` was the only visibility into who
        blocks whom; this exposes the same structures on demand — for
        ``metrics_snapshot()`` and the ``repro stats`` CLI — as plain
        JSON-serialisable data (keys are ``repr``-ed, modes are their string
        values).  A consistent snapshot taken under the manager's condition;
        nothing is mutated.
        """
        with self._cond:
            holders = {
                repr(key): {txn: mode.value for txn, mode in sorted(txn_modes.items())}
                for key, txn_modes in sorted(self._holders.items(), key=lambda kv: repr(kv[0]))
            }
            waits_for = {
                txn: sorted(edges) for txn, edges in sorted(self._waits_for.items())
            }
            return {
                "holders": holders,
                "waits_for": waits_for,
                "waiting": len(waits_for),
                "locked_keys": len(holders),
            }

    # ------------------------------------------------------------------
    # Internal helpers (all called with self._cond held)
    # ------------------------------------------------------------------
    def _blockers(self, txn_id: int, key: Key, mode: LockMode) -> List[int]:
        """Holders (other than the requester) incompatible with ``mode``."""
        holders = self._holders.get(key, {})
        if mode is LockMode.SHARED:
            return sorted(
                other
                for other, held in holders.items()
                if other != txn_id and held is LockMode.EXCLUSIVE
            )
        return sorted(other for other in holders if other != txn_id)

    def _grant(self, txn_id: int, key: Key, mode: LockMode) -> None:
        holders = self._holders.setdefault(key, {})
        current = holders.get(txn_id)
        if current is None or not current.covers(mode):
            holders[txn_id] = mode
        self._held_by_txn.setdefault(txn_id, set()).add(key)
        if self._waits_for:
            # Wake sleeping waiters so they refresh their wait-for edges:
            # this grant may have closed a cycle through the new holder.
            self._cond.notify_all()

    def _find_cycle(self, start: int) -> Optional[Tuple[int, ...]]:
        """DFS over the wait-for graph; the cycle through ``start``, if any."""
        path: List[int] = [start]
        on_path = {start}

        def visit(txn: int) -> Optional[Tuple[int, ...]]:
            for successor in sorted(self._waits_for.get(txn, ())):
                if successor == start:
                    return tuple(path)
                if successor in on_path:
                    continue  # a cycle not through the requester; its own victim will see it
                path.append(successor)
                on_path.add(successor)
                found = visit(successor)
                if found is not None:
                    return found
                on_path.discard(successor)
                path.pop()
            return None

        return visit(start)
