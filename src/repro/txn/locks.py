"""Record locks for updating transactions.

The paper's section 4 only requires locks for *updaters*; read-only
transactions run entirely without them (section 4.1).  This module provides
the minimal exclusive record-lock manager the transaction manager needs: an
updater takes an exclusive lock on every key it writes and holds it until
commit or abort (strict two-phase locking on write sets).

The simulation is single-threaded, so "blocking" is modelled as an immediate
:class:`LockConflictError`; tests use it to demonstrate that concurrent
updaters conflict on the same key while read-only transactions never touch
the lock table at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.storage.serialization import Key


class LockConflictError(Exception):
    """Another transaction already holds an exclusive lock on the key."""

    def __init__(self, key: Key, holder: int, requester: int) -> None:
        super().__init__(
            f"transaction {requester} cannot lock key {key!r}: "
            f"held exclusively by transaction {holder}"
        )
        self.key = key
        self.holder = holder
        self.requester = requester


@dataclass
class LockManager:
    """Exclusive per-key locks keyed by transaction id."""

    _holders: Dict[Key, int] = field(default_factory=dict)
    _held_by_txn: Dict[int, Set[Key]] = field(default_factory=dict)

    def acquire_exclusive(self, txn_id: int, key: Key) -> None:
        """Take (or re-take) the exclusive lock on ``key`` for ``txn_id``."""
        holder = self._holders.get(key)
        if holder is not None and holder != txn_id:
            raise LockConflictError(key=key, holder=holder, requester=txn_id)
        self._holders[key] = txn_id
        self._held_by_txn.setdefault(txn_id, set()).add(key)

    def release_all(self, txn_id: int) -> None:
        """Drop every lock held by ``txn_id`` (commit or abort)."""
        for key in self._held_by_txn.pop(txn_id, set()):
            if self._holders.get(key) == txn_id:
                del self._holders[key]

    def holder_of(self, key: Key) -> int | None:
        """The transaction currently holding ``key``, if any."""
        return self._holders.get(key)

    def locks_held(self, txn_id: int) -> Set[Key]:
        return set(self._held_by_txn.get(txn_id, set()))

    @property
    def locked_key_count(self) -> int:
        return len(self._holders)
