"""Transaction-processing support for the TSB-tree (paper section 4)."""

from repro.txn.clock import TimestampOracle
from repro.txn.locks import LockConflictError, LockManager, LockMode
from repro.txn.manager import (
    Transaction,
    TransactionError,
    TransactionManager,
    TransactionState,
)
from repro.txn.readonly import ReadOnlyTransaction

__all__ = [
    "LockConflictError",
    "LockManager",
    "LockMode",
    "ReadOnlyTransaction",
    "TimestampOracle",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TransactionState",
]
