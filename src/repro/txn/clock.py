"""Commit-timestamp oracle.

The paper assumes a *rollback database* (section 1): "records are stamped
with the transaction commit time rather than with the effective time for the
information."  The oracle issues those commit times — a strictly increasing
integer sequence — and also hands out *read timestamps* for read-only
transactions, which are stamped when they **start** rather than when they
commit (section 4.1).
"""

from __future__ import annotations

import threading


class TimestampOracle:
    """Monotonically increasing logical clock for commit and read timestamps."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("the clock cannot start before time zero")
        self._latest = start
        self._lock = threading.Lock()

    @property
    def latest(self) -> int:
        """The most recent timestamp issued (or the starting value)."""
        return self._latest

    def next_commit_timestamp(self) -> int:
        """Issue the commit time for a transaction that is committing now."""
        with self._lock:
            self._latest += 1
            return self._latest

    def read_timestamp(self) -> int:
        """Issue a read timestamp for a read-only transaction starting now.

        The read timestamp equals the latest issued commit time: the reader
        sees every transaction committed so far and, because no updater can
        ever commit with an earlier timestamp ("no updater can post a
        timestamp earlier than the read-only timestamp since that point in
        time has come and gone"), it never needs to wait or lock.
        """
        with self._lock:
            return self._latest

    def advance_to(self, timestamp: int) -> None:
        """Fast-forward the clock (used when replaying externally stamped data)."""
        if timestamp < 0:
            raise ValueError("timestamps are non-negative")
        with self._lock:
            self._latest = max(self._latest, timestamp)
