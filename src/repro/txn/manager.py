"""Transaction manager over a TSB-tree (paper section 4).

The manager implements the versioning-based concurrency scheme the paper
describes:

* **Updaters** write *provisional* versions — no timestamp yet — into the
  current database under exclusive record locks.  Provisional versions are
  never migrated to the historical database during a time split, so they can
  always be erased if the transaction aborts.
* **Commit** obtains a commit timestamp from the
  :class:`~repro.txn.clock.TimestampOracle` and stamps every provisional
  version with it, making the versions visible to readers.
* **Abort** erases the provisional versions and releases the locks; nothing
  of the transaction remains in either database.
* **Read-only transactions** (:mod:`repro.txn.readonly`) are stamped when
  they start and read the tree without any locks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.tsb_tree import TSBTree
from repro.storage.serialization import Key
from repro.txn.clock import TimestampOracle
from repro.txn.locks import LockManager
from repro.txn.readonly import ReadOnlyTransaction


class TransactionError(Exception):
    """Raised on invalid transaction usage (wrong state, unknown id, ...)."""


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """Handle for one updating transaction."""

    txn_id: int
    manager: "TransactionManager"
    state: TransactionState = TransactionState.ACTIVE
    write_set: Set[Key] = field(default_factory=set)
    commit_timestamp: Optional[int] = None

    # -- convenience pass-throughs ----------------------------------------
    def write(self, key: Key, value: bytes) -> None:
        self.manager.write(self.txn_id, key, value)

    def delete(self, key: Key) -> None:
        self.manager.delete(self.txn_id, key)

    def read(self, key: Key) -> Optional[bytes]:
        return self.manager.read(self.txn_id, key)

    def commit(self) -> int:
        return self.manager.commit(self.txn_id)

    def abort(self) -> None:
        self.manager.abort(self.txn_id)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is TransactionState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()


class TransactionManager:
    """Coordinates updaters, read-only readers and the commit clock."""

    def __init__(self, tree: TSBTree, clock: Optional[TimestampOracle] = None) -> None:
        self.tree = tree
        self.clock = clock or TimestampOracle(start=tree.now)
        self.locks = LockManager()
        self._next_txn_id = 1
        self._transactions: Dict[int, Transaction] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """Start an updating transaction."""
        txn = Transaction(txn_id=self._next_txn_id, manager=self)
        self._next_txn_id += 1
        self._transactions[txn.txn_id] = txn
        return txn

    def begin_readonly(self) -> ReadOnlyTransaction:
        """Start a lock-free read-only transaction stamped at its start time."""
        return ReadOnlyTransaction(tree=self.tree, timestamp=self.clock.read_timestamp())

    def commit(self, txn_id: int) -> int:
        """Stamp the transaction's versions with a fresh commit timestamp."""
        txn = self._active(txn_id)
        commit_timestamp = self.clock.next_commit_timestamp()
        if txn.write_set:
            self.tree.commit_provisional(txn_id, sorted(txn.write_set), commit_timestamp)
        txn.state = TransactionState.COMMITTED
        txn.commit_timestamp = commit_timestamp
        self.locks.release_all(txn_id)
        return commit_timestamp

    def abort(self, txn_id: int) -> None:
        """Erase every provisional version the transaction wrote."""
        txn = self._active(txn_id)
        if txn.write_set:
            self.tree.abort_provisional(txn_id, sorted(txn.write_set))
        txn.state = TransactionState.ABORTED
        self.locks.release_all(txn_id)

    # ------------------------------------------------------------------
    # Operations inside a transaction
    # ------------------------------------------------------------------
    def write(self, txn_id: int, key: Key, value: bytes) -> None:
        txn = self._active(txn_id)
        self.locks.acquire_exclusive(txn_id, key)
        self.tree.insert_provisional(key, value, txn_id)
        txn.write_set.add(key)

    def delete(self, txn_id: int, key: Key) -> None:
        txn = self._active(txn_id)
        self.locks.acquire_exclusive(txn_id, key)
        self.tree.delete_provisional(key, txn_id)
        txn.write_set.add(key)

    def read(self, txn_id: int, key: Key) -> Optional[bytes]:
        """Read inside an updating transaction (sees its own provisional writes)."""
        self._active(txn_id)
        version = self.tree.search_current(key, txn_id=txn_id)
        return None if version is None else version.value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def transaction(self, txn_id: int) -> Transaction:
        try:
            return self._transactions[txn_id]
        except KeyError as exc:
            raise TransactionError(f"unknown transaction {txn_id}") from exc

    def active_transactions(self) -> List[Transaction]:
        return [
            txn
            for txn in self._transactions.values()
            if txn.state is TransactionState.ACTIVE
        ]

    def _active(self, txn_id: int) -> Transaction:
        txn = self.transaction(txn_id)
        if txn.state is not TransactionState.ACTIVE:
            raise TransactionError(
                f"transaction {txn_id} is {txn.state.value}, not active"
            )
        return txn
