"""Transaction manager over a TSB-tree (paper section 4).

The manager implements the versioning-based concurrency scheme the paper
describes:

* **Updaters** write *provisional* versions — no timestamp yet — into the
  current database under exclusive record locks.  Provisional versions are
  never migrated to the historical database during a time split, so they can
  always be erased if the transaction aborts.
* **Commit** obtains a commit timestamp from the
  :class:`~repro.txn.clock.TimestampOracle` and stamps every provisional
  version with it, making the versions visible to readers.
* **Abort** erases the provisional versions and releases the locks; nothing
  of the transaction remains in either database.
* **Read-only transactions** (:mod:`repro.txn.readonly`) are stamped when
  they start and read the tree without any locks.

When a :class:`~repro.recovery.log_manager.LogManager` is attached, the
manager additionally enforces write-ahead logging: every operation appends
its log record *before* the tree is touched, and the commit record is
appended (and, per the group-commit policy, forced) *before* the versions
are stamped.  A transaction is then durably committed exactly when its
commit record lies inside the forced log prefix — which is what restart
recovery (:mod:`repro.recovery`) reconstructs after a crash.

The manager is safe for concurrent clients, with three coordination layers
that mirror a real system's:

* **record locks** (:class:`~repro.txn.locks.LockManager`) resolve logical
  write-write conflicts — blocking, with timeout and deadlock detection;
  they are always requested *before* the structure latch so a blocked
  transaction never holds the tree hostage;
* a **reader-writer latch** (shared with the owning
  :class:`~repro.api.store.VersionStore`, when there is one) protects the
  tree structure itself: every mutation runs exclusive, lock-free reads run
  shared — so read-only transactions still never wait on record locks, per
  section 4.1;
* a small registry mutex makes transaction-id assignment and the
  active-transaction table safe.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from time import perf_counter

from repro.core.tsb_tree import RecordTooLargeError, TSBTree
from repro.storage.latches import ReadWriteLatch
from repro.storage.serialization import Key
from repro.txn.clock import TimestampOracle
from repro.txn.locks import LockManager
from repro.txn.readonly import ReadOnlyTransaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.recovery.log_manager import LogManager


class TransactionError(Exception):
    """Raised on invalid transaction usage (wrong state, unknown id, ...)."""


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """Handle for one updating transaction."""

    txn_id: int
    manager: "TransactionManager"
    state: TransactionState = TransactionState.ACTIVE
    write_set: Set[Key] = field(default_factory=set)
    commit_timestamp: Optional[int] = None
    #: LSN of this transaction's commit record (None until commit, or when
    #: the manager runs without a write-ahead log).
    commit_lsn: Optional[int] = None

    # -- convenience pass-throughs ----------------------------------------
    def write(self, key: Key, value: bytes) -> None:
        self.manager.write(self.txn_id, key, value)

    def delete(self, key: Key) -> None:
        self.manager.delete(self.txn_id, key)

    def read(self, key: Key) -> Optional[bytes]:
        return self.manager.read(self.txn_id, key)

    def commit(self) -> int:
        return self.manager.commit(self.txn_id)

    def abort(self) -> None:
        self.manager.abort(self.txn_id)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is TransactionState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()


class TransactionManager:
    """Coordinates updaters, read-only readers and the commit clock."""

    def __init__(
        self,
        tree: TSBTree,
        clock: Optional[TimestampOracle] = None,
        log: Optional["LogManager"] = None,
        next_txn_id: int = 1,
        latch: Optional[ReadWriteLatch] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if next_txn_id <= 0:
            raise ValueError("transaction ids start at 1")
        self.tree = tree
        self.clock = clock or TimestampOracle(start=tree.now)
        self.metrics = metrics
        self.locks = LockManager(metrics=metrics)
        self.log = log
        #: The structure latch: exclusive around every tree mutation, shared
        #: around reads.  A VersionStore passes its own latch in so façade
        #: queries and transactional writes coordinate on one latch.
        self.latch = latch or ReadWriteLatch()
        #: Set when a logged operation died mid-structure-modification and
        #: may have left the in-memory tree inconsistent.  Durability
        #: operations (full checkpoints) refuse while this is set; the cure
        #: is restart recovery, which rebuilds from the last good image.
        self.requires_recovery = False
        self._next_txn_id = next_txn_id
        self._transactions: Dict[int, Transaction] = {}
        self._registry_lock = threading.Lock()

    @property
    def next_txn_id(self) -> int:
        """The id the next :meth:`begin` will assign (checkpointed to the WAL)."""
        return self._next_txn_id

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """Start an updating transaction."""
        with self._registry_lock:
            txn = Transaction(txn_id=self._next_txn_id, manager=self)
            self._next_txn_id += 1
            self._transactions[txn.txn_id] = txn
        if self.metrics is not None:
            self.metrics.inc("txn.begins")
        if self.log is not None:
            self.log.log_begin(txn.txn_id)
        return txn

    def begin_readonly(self) -> ReadOnlyTransaction:
        """Start a lock-free read-only transaction stamped at its start time."""
        return ReadOnlyTransaction(
            tree=self.tree, timestamp=self.clock.read_timestamp(), latch=self.latch
        )

    def commit(self, txn_id: int) -> int:
        """Stamp the transaction's versions with a fresh commit timestamp.

        With a write-ahead log attached, the commit record is appended (and
        group-commit-forced) *before* any version is stamped, so a crash can
        never leave stamped versions whose commit is not in the log.
        """
        txn = self._active(txn_id)
        commit_started = perf_counter()
        # The commit timestamp is drawn inside the exclusive latch hold so
        # stamping order equals timestamp order: a later stamp can never
        # reach the tree before an earlier one.  The strict-durability wait
        # (group_commit_size == 1 with a background flusher) happens after
        # the latch is released, so readers are never stalled on log I/O.
        with self.latch.write():
            commit_timestamp = self.clock.next_commit_timestamp()
            if self.log is not None:
                txn.commit_lsn = self.log.log_commit(
                    txn_id, commit_timestamp, wait_for_durability=False
                )
            if txn.write_set:
                try:
                    self.tree.commit_provisional(
                        txn_id, sorted(txn.write_set), commit_timestamp
                    )
                except Exception:
                    if self.log is not None:
                        # The durable commit record is authoritative: the
                        # transaction *is* committed even though in-memory
                        # stamping failed.  Marking it committed here blocks a
                        # contradictory abort(); restart recovery will replay
                        # the stamping from the log.
                        txn.state = TransactionState.COMMITTED
                        txn.commit_timestamp = commit_timestamp
                        self.locks.release_all(txn_id)
                        self.requires_recovery = True
                    raise
            txn.state = TransactionState.COMMITTED
            txn.commit_timestamp = commit_timestamp
        self.locks.release_all(txn_id)
        if (
            self.log is not None
            and self.log.group_commit_size == 1
            and txn.commit_lsn is not None
        ):
            # Strict durability preserved, latch-free: with synchronous
            # group commit this returns immediately (the append forced
            # inline); with a background flusher it blocks only this
            # committer until its record is in the forced prefix.
            if not self.log.wait_durable(txn.commit_lsn, timeout=5.0):
                self.log.force()  # flusher wedged or died: force inline
        if self.metrics is not None:
            self.metrics.inc("txn.commits")
            self.metrics.observe("txn.commit", perf_counter() - commit_started)
        return commit_timestamp

    def run_transaction(self, items: "List[tuple]") -> Transaction:
        """Write ``items`` (distinct keys) and commit, as one transaction.

        Equivalent to ``begin()`` + ``write()`` per item + ``commit()`` —
        same log-record sequence, same commit-timestamp draw, same lock
        discipline (every record lock is acquired before the latch) — but
        the writes and the commit stamping all happen under a *single*
        exclusive latch hold instead of one per operation.  This is the
        batch stamp-and-apply path ``put_many`` uses: on a contended store
        the per-item latch round-trips dominate, and here a run pays one.

        Keys must be distinct within ``items`` (a transaction's write set
        keeps one value per key); the caller chunks at repeated keys.
        Returns the committed transaction — ``commit_timestamp`` carries the
        shared stamp, ``commit_lsn`` feeds durability checks.
        """
        txn = self.begin()
        commit_started = perf_counter()
        try:
            for key, _value in items:
                self.locks.acquire_exclusive(txn.txn_id, key)
        except Exception:
            self.locks.release_all(txn.txn_id)
            raise
        with self.latch.write():
            for key, value in items:
                if self.log is not None:
                    self.log.log_insert(txn.txn_id, key, value)
                try:
                    self.tree.insert_provisional(key, value, txn.txn_id)
                except Exception as exc:
                    self._fail_logged(txn, exc)
                    raise
                txn.write_set.add(key)
            commit_timestamp = self.clock.next_commit_timestamp()
            if self.log is not None:
                txn.commit_lsn = self.log.log_commit(
                    txn.txn_id, commit_timestamp, wait_for_durability=False
                )
            if txn.write_set:
                try:
                    self.tree.commit_provisional(
                        txn.txn_id, sorted(txn.write_set), commit_timestamp
                    )
                except Exception:
                    if self.log is not None:
                        txn.state = TransactionState.COMMITTED
                        txn.commit_timestamp = commit_timestamp
                        self.locks.release_all(txn.txn_id)
                        self.requires_recovery = True
                    raise
            txn.state = TransactionState.COMMITTED
            txn.commit_timestamp = commit_timestamp
        self.locks.release_all(txn.txn_id)
        if (
            self.log is not None
            and self.log.group_commit_size == 1
            and txn.commit_lsn is not None
        ):
            if not self.log.wait_durable(txn.commit_lsn, timeout=5.0):
                self.log.force()
        if self.metrics is not None:
            self.metrics.inc("txn.commits")
            self.metrics.observe("txn.commit", perf_counter() - commit_started)
        return txn

    def abort(self, txn_id: int) -> None:
        """Erase every provisional version the transaction wrote."""
        txn = self._active(txn_id)
        with self.latch.write():
            if self.log is not None:
                self.log.log_abort(txn_id)
            if txn.write_set:
                self.tree.abort_provisional(txn_id, sorted(txn.write_set))
            txn.state = TransactionState.ABORTED
        self.locks.release_all(txn_id)
        if self.metrics is not None:
            self.metrics.inc("txn.aborts")

    # ------------------------------------------------------------------
    # Operations inside a transaction
    # ------------------------------------------------------------------
    def write(self, txn_id: int, key: Key, value: bytes) -> None:
        txn = self._active(txn_id)
        # Record lock first, latch second, always: a transaction blocked on
        # a record lock holds no latch, so readers and other writers keep
        # flowing while it waits (and latches stay deadlock-free).
        self.locks.acquire_exclusive(txn_id, key)
        with self.latch.write():
            if self.log is not None:
                self.log.log_insert(txn_id, key, value)
            try:
                self.tree.insert_provisional(key, value, txn_id)
            except Exception as exc:
                self._fail_logged(txn, exc)
                raise
            txn.write_set.add(key)

    def delete(self, txn_id: int, key: Key) -> None:
        txn = self._active(txn_id)
        self.locks.acquire_exclusive(txn_id, key)
        with self.latch.write():
            if self.log is not None:
                self.log.log_delete(txn_id, key)
            try:
                self.tree.delete_provisional(key, txn_id)
            except Exception as exc:
                self._fail_logged(txn, exc)
                raise
            txn.write_set.add(key)

    def _fail_logged(self, txn: Transaction, exc: Exception) -> None:
        """Doom a logged transaction whose tree write blew up mid-operation.

        The operation record is already in the log but its effect never
        (fully) reached the tree, so the transaction must not be allowed to
        commit — redo would replay the phantom operation.  An abort record
        makes it a durable loser.  A clean pre-write rejection (an oversized
        record is refused before the tree is touched) leaves the tree
        intact, so the transaction's earlier provisional versions are erased
        immediately like any abort.  Any other failure may have broken the
        tree mid-structure-modification — erasing from it could make things
        worse — so the versions are left for restart recovery to undo and
        the manager is flagged as requiring recovery: full checkpoints
        refuse until a restart rebuilds from the last good image.  Without a
        log the old contract stands: the error propagates and the
        transaction stays active.
        """
        if self.log is None:
            return
        self.log.log_abort(txn.txn_id)
        txn.state = TransactionState.ABORTED
        if isinstance(exc, RecordTooLargeError):
            if txn.write_set:
                self.tree.abort_provisional(txn.txn_id, sorted(txn.write_set))
        else:
            self.requires_recovery = True
        self.locks.release_all(txn.txn_id)

    def read(self, txn_id: int, key: Key) -> Optional[bytes]:
        """Read inside an updating transaction (sees its own provisional writes)."""
        self._active(txn_id)
        with self.latch.read():
            version = self.tree.search_current(key, txn_id=txn_id)
        return None if version is None else version.value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def transaction(self, txn_id: int) -> Transaction:
        with self._registry_lock:
            try:
                return self._transactions[txn_id]
            except KeyError as exc:
                raise TransactionError(f"unknown transaction {txn_id}") from exc

    def active_transactions(self) -> List[Transaction]:
        with self._registry_lock:
            return [
                txn
                for txn in self._transactions.values()
                if txn.state is TransactionState.ACTIVE
            ]

    def _active(self, txn_id: int) -> Transaction:
        txn = self.transaction(txn_id)
        if txn.state is not TransactionState.ACTIVE:
            raise TransactionError(
                f"transaction {txn_id} is {txn.state.value}, not active"
            )
        return txn
