"""Lock-free read-only transactions (paper section 4.1).

A read-only transaction — for example a file backup or database unload — is
given a timestamp when it is *initiated*, not when it commits.  It then reads
the versions valid at that timestamp:

* it never sees provisional (unstamped) versions, so it never has to wait for
  an updater to commit;
* no updater can later commit with an earlier timestamp, so the snapshot the
  reader sees is stable;
* consequently it takes no logical record locks at all.

:class:`ReadOnlyTransaction` is a thin, immutable view over a
:class:`~repro.core.tsb_tree.TSBTree` at one timestamp.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional

from repro.core.records import Version
from repro.core.tsb_tree import TSBTree
from repro.storage.latches import ReadWriteLatch
from repro.storage.serialization import Key


class ReadOnlyTransaction:
    """A consistent, lock-free view of the database at a fixed timestamp.

    "Lock-free" is the paper's logical guarantee: no *record locks*, so no
    waiting on updaters' write sets.  Under concurrent clients each read
    still briefly holds the structure latch in shared mode (when the owning
    manager passed one in) — a physical protection that readers share with
    each other and that never involves the lock manager.
    """

    def __init__(
        self,
        tree: TSBTree,
        timestamp: int,
        latch: Optional[ReadWriteLatch] = None,
    ) -> None:
        self.tree = tree
        self.timestamp = timestamp
        self._latch = latch

    def _shared(self):
        return self._latch.read() if self._latch is not None else nullcontext()

    def read(self, key: Key) -> Optional[bytes]:
        """Value of ``key`` as of the transaction's read timestamp."""
        version = self.read_version(key)
        return None if version is None else version.value

    def read_version(self, key: Key) -> Optional[Version]:
        with self._shared():
            return self.tree.search_as_of(key, self.timestamp)

    def range_read(
        self, low: Optional[Key] = None, high: Optional[Key] = None
    ) -> List[Version]:
        """Every live record in ``[low, high)`` as of the read timestamp."""
        with self._shared():
            return self.tree.range_search(low, high, as_of=self.timestamp)

    def snapshot(self) -> Dict[Key, Version]:
        """The full database state as of the read timestamp.

        This is the lock-free backup/unload operation the paper highlights:
        it sees only committed versions no newer than the read timestamp and
        never blocks an updater or is blocked by one.
        """
        with self._shared():
            return self.tree.snapshot(self.timestamp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReadOnlyTransaction(timestamp={self.timestamp})"
