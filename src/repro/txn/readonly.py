"""Lock-free read-only transactions (paper section 4.1).

A read-only transaction — for example a file backup or database unload — is
given a timestamp when it is *initiated*, not when it commits.  It then reads
the versions valid at that timestamp:

* it never sees provisional (unstamped) versions, so it never has to wait for
  an updater to commit;
* no updater can later commit with an earlier timestamp, so the snapshot the
  reader sees is stable;
* consequently it takes no logical record locks at all.

:class:`ReadOnlyTransaction` is a thin, immutable view over a
:class:`~repro.core.tsb_tree.TSBTree` at one timestamp.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.records import Version
from repro.core.tsb_tree import TSBTree
from repro.storage.serialization import Key


class ReadOnlyTransaction:
    """A consistent, lock-free view of the database at a fixed timestamp."""

    def __init__(self, tree: TSBTree, timestamp: int) -> None:
        self.tree = tree
        self.timestamp = timestamp

    def read(self, key: Key) -> Optional[bytes]:
        """Value of ``key`` as of the transaction's read timestamp."""
        version = self.tree.search_as_of(key, self.timestamp)
        return None if version is None else version.value

    def read_version(self, key: Key) -> Optional[Version]:
        return self.tree.search_as_of(key, self.timestamp)

    def range_read(
        self, low: Optional[Key] = None, high: Optional[Key] = None
    ) -> List[Version]:
        """Every live record in ``[low, high)`` as of the read timestamp."""
        return self.tree.range_search(low, high, as_of=self.timestamp)

    def snapshot(self) -> Dict[Key, Version]:
        """The full database state as of the read timestamp.

        This is the lock-free backup/unload operation the paper highlights:
        it sees only committed versions no newer than the read timestamp and
        never blocks an updater or is blocked by one.
        """
        return self.tree.snapshot(self.timestamp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReadOnlyTransaction(timestamp={self.timestamp})"
