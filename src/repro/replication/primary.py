"""WAL-shipping primary: tail each shard's log device, stream to replicas.

A :class:`ReplicationPrimary` wraps an already-open WAL-enabled store (plain
or sharded) and serves the replication side of the wire protocol on its own
listener:

* ``TOPOLOGY`` — the shard layout a fresh replica needs to build matching
  follower trees (sharded flag, boundaries, page size, group-commit size);
* ``WATERMARK`` — the primary's ``(durable_lsn, timestamp)`` pair;
* ``SUBSCRIBE(shard, from_lsn)`` — starts an unbounded stream of ``PARTIAL``
  frames whose payloads are ``LOG_BATCH`` bodies: raw, whole WAL record
  frames sliced from the shard's :class:`~repro.storage.logdevice.LogDevice`
  durable prefix.  Shipping the *bytes* rather than re-encoded records means
  the replica's mirror device ends up byte-identical to the primary's log
  prefix — the property failover leans on when it ranks replicas by durable
  prefix length;
* ``ACK(shard, lsn)`` — replica durability acknowledgements, read
  concurrently on the same connection (the stream is full-duplex).

Only *durable* bytes ever ship: the volatile tail a crash would lose is
invisible to subscribers, so an acknowledged record can never be lost by a
primary crash that its own durable log would survive.

Observability: per-shard gauges ``repl.shard<i>.durable_lsn`` /
``.min_acked`` / ``.lag_lsn`` and histograms ``repl.batch_bytes`` /
``repl.batch_records`` land in the wrapped store's metrics registry.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.api.sharded import ShardedVersionStore
from repro.api.store import VersionStore
from repro.server.protocol import (
    Opcode,
    ProtocolError,
    Status,
    STREAM_CHUNK_BYTES,
    check_frame_body,
    check_frame_header,
    encode_response,
    decode_request,
    iter_wal_records,
    pack_error,
    pack_log_batch,
    pack_topology,
    pack_watermark,
    unpack_ack,
    unpack_subscribe,
)
from repro.replication.apply import scan_offset

_FRAME_HEADER_SIZE = 8


class ReplicationError(Exception):
    """Replication-layer misconfiguration or protocol failure."""


class _Connection:
    """One subscriber connection: socket, send lock, per-shard ACK vector."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.reader = sock.makefile("rb")
        self.send_lock = threading.Lock()
        self.acked: Dict[int, int] = {}
        self.subscribed: List[int] = []
        self.alive = True

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


class ReplicationPrimary:
    """Stream a WAL-enabled store's log to any number of subscribers."""

    def __init__(
        self,
        store: VersionStore,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.002,
        batch_bytes: int = STREAM_CHUNK_BYTES,
    ) -> None:
        self.store = store
        self.poll_interval = poll_interval
        self.batch_bytes = batch_bytes
        if isinstance(store, ShardedVersionStore):
            self._shards = list(store.shard_stores)
        else:
            self._shards = [store]
        for index, shard_store in enumerate(self._shards):
            if shard_store.log is None or shard_store.log_device is None:
                raise ReplicationError(
                    f"shard {index} has no WAL; replication ships log records "
                    "(open the store with wal=True)"
                )
        self.metrics = store.metrics
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self.host, self.port = self._listener.getsockname()
        self._running = False
        self._killed = False
        self._connections: List[_Connection] = []
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicationPrimary":
        self._running = True
        self._listener.listen()
        accept = threading.Thread(
            target=self._accept_loop, name="repl-primary-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop streaming, close every connection."""
        self._running = False
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()

    def kill(self) -> None:
        """Abrupt death: the failure-injection hook.

        Connections drop mid-frame without any farewell — exactly what a
        machine loss looks like to the replicas.  The wrapped store is NOT
        closed: the test harness still owns it (and its durable log is the
        oracle a promoted replica is checked against).
        """
        self._killed = True
        self.stop()

    @property
    def killed(self) -> bool:
        return self._killed

    def __enter__(self) -> "ReplicationPrimary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accept / per-connection serving
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock)
            with self._lock:
                self._connections.append(connection)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="repl-primary-conn",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, connection: _Connection) -> None:
        try:
            while self._running and connection.alive:
                request = self._read_request(connection)
                if request is None:
                    return
                self._dispatch(connection, request)
        except (OSError, ProtocolError, struct.error):
            pass  # dead or misbehaving peer: drop the connection
        finally:
            connection.close()
            with self._lock:
                if connection in self._connections:
                    self._connections.remove(connection)
            self._refresh_gauges()

    def _read_request(self, connection: _Connection):
        header = connection.reader.read(_FRAME_HEADER_SIZE)
        if len(header) < _FRAME_HEADER_SIZE:
            return None  # clean EOF
        length, crc = check_frame_header(header)
        body = connection.reader.read(length)
        if len(body) < length:
            return None  # torn frame at EOF
        return decode_request(check_frame_body(body, crc))

    def _send(self, connection: _Connection, frame: bytes) -> bool:
        try:
            with connection.send_lock:
                connection.sock.sendall(frame)
            return True
        except OSError:
            connection.close()
            return False

    def _dispatch(self, connection: _Connection, request) -> None:
        opcode = request.opcode
        if opcode is Opcode.PING:
            self._send(connection, encode_response(request.request_id, Status.OK))
        elif opcode is Opcode.TOPOLOGY:
            self._send(
                connection,
                encode_response(
                    request.request_id, Status.OK, self._topology_payload()
                ),
            )
        elif opcode is Opcode.WATERMARK:
            durable, timestamp = self.store.watermark()
            self._send(
                connection,
                encode_response(
                    request.request_id,
                    Status.OK,
                    pack_watermark(durable, timestamp),
                ),
            )
        elif opcode is Opcode.SUBSCRIBE:
            shard, from_lsn = unpack_subscribe(request.payload)
            if not 0 <= shard < len(self._shards):
                self._send(
                    connection,
                    encode_response(
                        request.request_id,
                        Status.BAD_REQUEST,
                        pack_error(f"no shard {shard}"),
                    ),
                )
                return
            connection.subscribed.append(shard)
            streamer = threading.Thread(
                target=self._stream_shard,
                args=(connection, request.request_id, shard, from_lsn),
                name=f"repl-stream-{shard}",
                daemon=True,
            )
            streamer.start()
            self._threads.append(streamer)
        elif opcode is Opcode.ACK:
            shard, lsn = unpack_ack(request.payload)
            # ACKs may arrive out of order (the replica forces batches
            # concurrently with our sends); the vector is monotone.
            if lsn > connection.acked.get(shard, 0):
                connection.acked[shard] = lsn
            self._refresh_gauges()
        else:
            self._send(
                connection,
                encode_response(
                    request.request_id,
                    Status.BAD_REQUEST,
                    pack_error(f"replication listener does not speak {opcode.name}"),
                ),
            )

    def _topology_payload(self) -> bytes:
        sharded = isinstance(self.store, ShardedVersionStore)
        boundaries = (
            list(self.store.sharded_engine.boundaries) if sharded else []
        )
        config = self._shards[0].config
        return pack_topology(
            sharded, boundaries, config.page_size, config.group_commit_size
        )

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def _stream_shard(
        self, connection: _Connection, request_id: int, shard: int, from_lsn: int
    ) -> None:
        device = self._shards[shard].log_device
        offset = scan_offset(device.durable_contents(), from_lsn)
        while self._running and connection.alive:
            if device.durable_bytes <= offset:
                time.sleep(self.poll_interval)
                continue
            data = device.durable_suffix(offset)
            shipped = 0
            for raw, last_lsn, count in self._cut_batches(data):
                if not self._send(
                    connection,
                    encode_response(
                        request_id,
                        Status.PARTIAL,
                        pack_log_batch(shard, last_lsn, raw),
                    ),
                ):
                    return
                shipped += len(raw)
                self.metrics.inc("repl.batches_sent")
                self.metrics.observe("repl.batch_bytes", len(raw))
                self.metrics.observe("repl.batch_records", count)
            offset += shipped
            self._refresh_gauges()

    def _cut_batches(self, data: bytes):
        """Cut ``data`` into whole-record slices of at most ``batch_bytes``.

        Yields ``(raw, last_lsn, record_count)``.  Bytes past the last whole
        record (none in practice: appends and forces are whole-record) are
        left for the next poll.
        """
        start = 0
        end = 0
        last_lsn = 0
        count = 0
        for record_start, lsn, record_end in iter_wal_records(data):
            if count and record_end - start > self.batch_bytes:
                yield data[start:end], last_lsn, count
                start, count = end, 0
            last_lsn = lsn
            end = record_end
            count += 1
        if count:
            yield data[start:end], last_lsn, count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def durable_lsns(self) -> List[int]:
        return [shard.durable_lsn() for shard in self._shards]

    def min_acked(self, shard: int) -> Optional[int]:
        """The slowest subscriber's durable LSN for ``shard`` (None: no subs)."""
        with self._lock:
            acks = [
                connection.acked.get(shard, 0)
                for connection in self._connections
                if shard in connection.subscribed
            ]
        return min(acks) if acks else None

    def _refresh_gauges(self) -> None:
        for index, shard_store in enumerate(self._shards):
            durable = shard_store.durable_lsn()
            self.metrics.set_gauge(f"repl.shard{index}.durable_lsn", durable)
            acked = self.min_acked(index)
            if acked is not None:
                self.metrics.set_gauge(f"repl.shard{index}.min_acked", acked)
                self.metrics.set_gauge(
                    f"repl.shard{index}.lag_lsn", max(0, durable - acked)
                )

    def replication_lag(self) -> int:
        """Worst-case LSN lag across shards and subscribers (0 when caught up)."""
        lag = 0
        for index, shard_store in enumerate(self._shards):
            acked = self.min_acked(index)
            if acked is None:
                continue
            lag = max(lag, shard_store.durable_lsn() - acked)
        return lag

    def wait_caught_up(self, timeout: float = 10.0) -> bool:
        """Block until every subscriber has acknowledged every shard's
        current durable LSN (False on timeout or with no subscribers)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            caught_up = True
            for index, shard_store in enumerate(self._shards):
                acked = self.min_acked(index)
                if acked is None or acked < shard_store.durable_lsn():
                    caught_up = False
                    break
            if caught_up:
                return True
            time.sleep(self.poll_interval)
        return False
