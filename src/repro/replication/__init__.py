"""Replication tier: WAL shipping, follower reads, failover, migration.

Layers:

* :mod:`repro.replication.apply` — incremental redo (:class:`LogReplayer`):
  replays shipped WAL records into a follower TSB-tree in commit order.
* :mod:`repro.replication.primary` — :class:`ReplicationPrimary`: tails a
  WAL-enabled store's log devices and streams durable bytes to subscribers.
* :mod:`repro.replication.replica` — :class:`Replica`: mirrors the log,
  applies it, serves follower reads, and :meth:`~Replica.promote`\\ s to a
  writable primary on failover (:func:`elect` picks the longest durable
  prefix).
* :mod:`repro.replication.cluster` — multi-node routing and online shard
  migration: :class:`ClusterNode`, :class:`ClusterClient`,
  :func:`migrate_range`.
"""

from repro.replication.apply import LogReplayer, replay_device, scan_offset
from repro.replication.primary import ReplicationError, ReplicationPrimary
from repro.replication.replica import Replica, elect
from repro.replication.cluster import (
    ClusterClient,
    ClusterNode,
    NodeRole,
    RoutingTable,
    migrate_range,
)

__all__ = [
    "LogReplayer",
    "replay_device",
    "scan_offset",
    "ReplicationError",
    "ReplicationPrimary",
    "Replica",
    "elect",
    "ClusterClient",
    "ClusterNode",
    "NodeRole",
    "RoutingTable",
    "migrate_range",
]
