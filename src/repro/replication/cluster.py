"""Multi-node routing and online shard migration.

A *cluster* here is a set of :class:`ClusterNode`\\ s — each an ordinary
:class:`~repro.server.service.ReproServer` over a WAL-enabled sharded
store, plus a :class:`NodeRole` that knows which key ranges this node
owns.  Ownership lives in a :class:`RoutingTable` of
``(low, high, owner, epoch)`` entries; every node holds its own copy, and
a request for a key the node does not own answers ``WRONG_SHARD`` with
the node's current table, so stale clients self-correct without any
central coordinator.

Online migration of ``[low, high)`` from ``source`` to ``target``
(:func:`migrate_range`) is the classic copy / catch-up / cutover dance:

1. **Copy.**  ``SNAPSHOT_READ`` takes a consistent snapshot of the
   range under the source's read latch — *every version* of every
   in-range key, as ``(timestamp, key, tombstone, value)`` events — and
   records each shard's WAL position at the copy point.  The events are
   pushed to the target with ``SNAPSHOT_CHUNK``; replayed in timestamp
   order they reproduce the range byte-identically, every as-of answer
   included.  Writes continue on the source throughout.
2. **Catch-up.**  Repeated delta reads scan the source WAL from the
   copy positions and ship only committed in-range events, advancing the
   positions, until a round comes back (nearly) empty.
3. **Cutover.**  ``CUTOVER(PREPARE)`` freezes the range on the source
   (in-range requests answer ``WRONG_SHARD``; clients buffer-and-retry),
   one final delta drains whatever landed between the last catch-up and
   the freeze, and ``CUTOVER(COMMIT)`` installs ``range -> target`` at a
   bumped epoch on every node.  Retrying clients then learn the new
   owner from any node's table and their writes land on the target — no
   write ever *fails*; writes to the range merely stall for the freeze
   window (which :mod:`benchmarks.bench_replication` measures).

:class:`ClusterClient` is the matching client: it routes each key to its
owner, fans scatter reads out to every node (each node clips to the
ranges it owns, so the union is exact), and turns ``WRONG_SHARD`` into
install-routes-and-retry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.engine import VersionStoreError
from repro.api.sharded import ShardedVersionStore
from repro.api.store import StoreConfig, VersionStore
from repro.client import ReproClient, WrongShardError as ClientWrongShardError
from repro.recovery.log_records import LogRecordType, decode_stream
from repro.server import protocol
from repro.server.protocol import (
    ByteReader,
    CUTOVER_COMMIT,
    CUTOVER_PREPARE,
    Event,
)
from repro.server.registry import StoreRegistry
from repro.server.service import ReproServer
from repro.storage.serialization import Key

Route = Tuple[Optional[Key], Optional[Key], str, int]


def _contains(low: Optional[Key], high: Optional[Key], key: Key) -> bool:
    """Half-open range membership: ``low <= key < high`` (None = unbounded)."""
    if low is not None and key < low:
        return False
    if high is not None and key >= high:
        return False
    return True


class RoutingTable:
    """``(low, high, owner, epoch)`` entries; highest epoch wins per key.

    The table only ever *grows* (cutovers append at a bumped epoch), so
    merging tables from different nodes is a plain union and a stale
    client converges by installing whatever a fresher node answers.
    """

    def __init__(self, entries: Sequence[Route]) -> None:
        self._entries: List[Route] = list(entries)
        self._lock = threading.Lock()

    def routes(self) -> List[Route]:
        with self._lock:
            return list(self._entries)

    def owner(self, key: Key) -> Optional[str]:
        """The owning node's name: the highest-epoch entry containing ``key``."""
        best: Optional[Route] = None
        with self._lock:
            for entry in self._entries:
                low, high, _, epoch = entry
                if _contains(low, high, key) and (best is None or epoch > best[3]):
                    best = entry
        return best[2] if best is not None else None

    def max_epoch(self) -> int:
        with self._lock:
            return max((entry[3] for entry in self._entries), default=0)

    def install(self, routes: Sequence[Route]) -> None:
        """Union in routes learned from another node (or a cutover)."""
        with self._lock:
            for route in routes:
                if route not in self._entries:
                    self._entries.append(tuple(route))


class NodeRole:
    """One node's cluster membership: ownership checks and migration ops.

    This is the object :class:`~repro.server.service.ReproServer` consults
    (its ``node`` hook) — keyed requests go through :meth:`check_key`,
    scatter reads clip with :meth:`owns`, and the migration opcodes land
    on :meth:`snapshot_read` / :meth:`apply_chunk` / :meth:`cutover`.
    """

    def __init__(self, name: str, table: RoutingTable) -> None:
        self.name = name
        self.table = table
        #: Ranges frozen by CUTOVER_PREPARE: owned here, but deflecting
        #: every request until the matching COMMIT moves them for good.
        self._frozen: List[Tuple[Optional[Key], Optional[Key]]] = []
        self._lock = threading.Lock()

    # -- ownership -----------------------------------------------------
    def owns(self, tenant: str, key: Key) -> bool:
        with self._lock:
            for low, high in self._frozen:
                if _contains(low, high, key):
                    return False
        return self.table.owner(key) == self.name

    def check_key(self, tenant: str, key: Key) -> None:
        if not self.owns(tenant, key):
            raise protocol.WrongShardError(self.table.routes())

    def routes(self, tenant: str) -> List[Route]:
        return self.table.routes()

    # -- migration: source side ----------------------------------------
    def snapshot_read(self, store, reader: ByteReader) -> List[bytes]:
        """Serve one SNAPSHOT_READ: event chunks + a final copy-state payload.

        Empty ``offsets`` → the full consistent snapshot of the range (all
        versions, tombstones included) plus each shard's WAL position at
        the copy point.  Non-empty → the committed in-range delta from
        those positions, with advanced positions.  Either way the read
        holds the store's latch, so the events and the positions are one
        atomic cut: every committed transaction is either in the events or
        past the returned positions, never both, never neither.
        """
        low, high, offsets = protocol.unpack_migrate_read(reader)
        if not isinstance(store, ShardedVersionStore):
            raise protocol.ProtocolError(
                "online migration requires a sharded WAL store"
            )
        if offsets:
            events, new_offsets = self._delta_events(store, low, high, offsets)
        else:
            events, new_offsets = self._snapshot_events(store, low, high)
        chunks = protocol.chunk_events(events)
        chunks.append(protocol.pack_copy_state(new_offsets))
        return chunks

    @staticmethod
    def _snapshot_events(
        store: ShardedVersionStore, low: Optional[Key], high: Optional[Key]
    ) -> Tuple[List[Event], List[Tuple[int, int]]]:
        engine = store.sharded_engine
        events: List[Event] = []
        offsets: List[Tuple[int, int]] = []
        # Exclusive hold: the façade latch is not reentrant, so histories
        # are read at the engine level; exclusivity also pins every shard's
        # WAL append position to the same instant as the events.
        with store.write_latched():
            for index, inner in enumerate(engine.stores):
                device = inner.log_device
                if device is None:
                    raise protocol.ProtocolError(
                        f"shard {index} has no WAL; migration needs wal=True"
                    )
                offsets.append((index, device.appended_bytes))
                for key in engine._shard_keys[index]:
                    if not _contains(low, high, key):
                        continue
                    for version in inner.engine.tree.key_history(key):
                        if version.timestamp is None:
                            continue  # provisional: not committed, not copied
                        events.append(
                            (
                                version.timestamp,
                                key,
                                version.is_tombstone,
                                version.value,
                            )
                        )
        events.sort(key=lambda event: event[0])
        return events, offsets

    @staticmethod
    def _delta_events(
        store: ShardedVersionStore,
        low: Optional[Key],
        high: Optional[Key],
        offsets: Sequence[Tuple[int, int]],
    ) -> Tuple[List[Event], List[Tuple[int, int]]]:
        engine = store.sharded_engine
        events: List[Event] = []
        new_offsets: List[Tuple[int, int]] = []
        with store.write_latched():
            for shard, offset in offsets:
                inner = engine.stores[shard]
                device = inner.log_device
                # Push any group-commit tail out so the delta covers every
                # committed transaction up to this instant.
                device.force()
                data = device.durable_suffix(offset)
                new_offsets.append((shard, offset + len(data)))
                events.extend(_committed_events(data, low, high))
        events.sort(key=lambda event: event[0])
        return events, new_offsets

    # -- migration: target side ----------------------------------------
    def apply_chunk(self, store, payload: ByteReader) -> bytes:
        """Apply one batch of migration events at their original timestamps.

        Replay is idempotent: an event whose version already exists on the
        target (a retried chunk, or a range migrating back to a node that
        once owned it and still holds its history) is a no-op, not an
        error.
        """
        events = protocol.unpack_events(payload)
        for timestamp, key, tombstone, value in events:
            try:
                if tombstone:
                    store.delete(key, timestamp=timestamp)
                else:
                    store.insert(key, value, timestamp=timestamp)
            except VersionStoreError:
                continue  # version already present at this timestamp
        return b""

    # -- cutover -------------------------------------------------------
    def cutover(self, tenant: str, payload: ByteReader) -> bytes:
        phase, low, high, epoch, target = protocol.unpack_cutover(payload)
        if phase == CUTOVER_PREPARE:
            with self._lock:
                self._frozen.append((low, high))
        elif phase == CUTOVER_COMMIT:
            self.table.install([(low, high, target, epoch)])
            with self._lock:
                self._frozen = [
                    frozen for frozen in self._frozen if frozen != (low, high)
                ]
        else:
            raise protocol.ProtocolError(f"unknown cutover phase {phase}")
        return protocol.pack_routing(self.table.routes())


def _committed_events(
    data: bytes, low: Optional[Key], high: Optional[Key]
) -> List[Event]:
    """Committed in-range events from a WAL byte slice, in commit order.

    Transactions whose COMMIT is not in the slice contribute nothing (the
    slice boundaries fall between whole transactions: the source logs each
    transaction under one latch hold, and the cut is taken under the same
    latch).
    """
    images: Dict[int, List[Tuple[bool, Key, bytes]]] = {}
    events: List[Event] = []
    for record in decode_stream(data):
        kind = record.kind
        if kind is LogRecordType.BEGIN:
            images[record.txn_id] = []
        elif kind is LogRecordType.INSERT:
            images.setdefault(record.txn_id, []).append(
                (False, record.key, record.value)
            )
        elif kind is LogRecordType.DELETE:
            images.setdefault(record.txn_id, []).append((True, record.key, b""))
        elif kind is LogRecordType.COMMIT:
            for is_delete, key, value in images.pop(record.txn_id, []):
                if _contains(low, high, key):
                    events.append(
                        (record.commit_timestamp, key, is_delete, value)
                    )
        elif kind is LogRecordType.ABORT:
            images.pop(record.txn_id, None)
    return events


class ClusterNode:
    """One live node: a served sharded WAL store plus its cluster role."""

    def __init__(
        self,
        name: str,
        config: StoreConfig,
        tenant: str = "default",
        table: Optional[RoutingTable] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **server_kwargs,
    ) -> None:
        self.name = name
        self.tenant = tenant
        self.role = NodeRole(name, table or RoutingTable([(None, None, name, 0)]))
        self.registry = StoreRegistry({tenant: config})
        self.server = ReproServer(
            self.registry, host=host, port=port, node=self.role, **server_kwargs
        )

    def start(self) -> "ClusterNode":
        self.server.start()
        return self

    def stop(self) -> None:
        self.server.stop()

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    @property
    def store(self) -> VersionStore:
        return self.registry.get(self.tenant)

    def __enter__(self) -> "ClusterNode":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ClusterClient:
    """Route-aware client over a set of cluster nodes.

    Writes go to each key's owner; a ``WRONG_SHARD`` answer installs the
    fresh routes and retries, so a write outlasts any cutover (it stalls
    through the freeze window, it never fails).  Scatter reads fan out to
    every node and union the answers — each node clips to the ranges it
    owns, so the union is exact and duplicate-free.
    """

    def __init__(
        self,
        nodes: Dict[str, Tuple[str, int]],
        tenant: str = "default",
        retry_sleep: float = 0.002,
        **client_kwargs,
    ) -> None:
        self.clients: Dict[str, ReproClient] = {
            name: ReproClient(host, port, tenant=tenant, **client_kwargs)
            for name, (host, port) in nodes.items()
        }
        self.retry_sleep = retry_sleep
        first = next(iter(self.clients.values()))
        self.table = RoutingTable(first.route())

    def close(self) -> None:
        for client in self.clients.values():
            client.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- routing mechanics ---------------------------------------------
    def _client_for(self, key: Key) -> ReproClient:
        owner = self.table.owner(key)
        if owner is None or owner not in self.clients:
            raise ClientWrongShardError(
                f"no live node owns key {key!r}", self.table.routes()
            )
        return self.clients[owner]

    def _note_wrong_shard(self, error: ClientWrongShardError) -> None:
        """Install fresher routes; briefly back off if nothing was fresher
        (the cutover freeze window: same epoch, same owner, just frozen)."""
        before = self.table.max_epoch()
        self.table.install(error.routes)
        if self.table.max_epoch() <= before:
            time.sleep(self.retry_sleep)

    # -- writes --------------------------------------------------------
    def put_many(self, items: Sequence[Tuple[Key, bytes]]) -> List[int]:
        """Batch write across owners; never fails on a concurrent cutover."""
        stamps: List[Optional[int]] = [None] * len(items)
        pending = list(enumerate(items))
        while pending:
            groups: Dict[str, List[Tuple[int, Key, bytes]]] = {}
            for index, (key, value) in pending:
                owner = self.table.owner(key)
                if owner is None or owner not in self.clients:
                    raise ClientWrongShardError(
                        f"no live node owns key {key!r}", self.table.routes()
                    )
                groups.setdefault(owner, []).append((index, key, value))
            pending = []
            for owner, group in groups.items():
                try:
                    batch_stamps = self.clients[owner].put_many(
                        [(key, value) for _, key, value in group]
                    )
                except ClientWrongShardError as error:
                    self._note_wrong_shard(error)
                    pending.extend(
                        (index, (key, value)) for index, key, value in group
                    )
                    continue
                for (index, _, _), stamp in zip(group, batch_stamps):
                    stamps[index] = stamp
        return stamps  # type: ignore[return-value]

    def insert(self, key: Key, value: bytes) -> int:
        return self.put_many([(key, value)])[0]

    # -- keyed reads ---------------------------------------------------
    def _keyed_read(self, key: Key, operation):
        while True:
            try:
                return operation(self._client_for(key))
            except ClientWrongShardError as error:
                self._note_wrong_shard(error)

    def get(self, key: Key):
        return self._keyed_read(key, lambda client: client.get(key))

    def get_as_of(self, key: Key, timestamp: int):
        return self._keyed_read(
            key, lambda client: client.get_as_of(key, timestamp)
        )

    def key_history(self, key: Key):
        return self._keyed_read(key, lambda client: client.key_history(key))

    # -- scatter reads -------------------------------------------------
    def snapshot(self, timestamp: int):
        merged: Dict[Key, object] = {}
        for client in self.clients.values():
            merged.update(client.snapshot(timestamp))
        return merged

    def range_search(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        as_of: Optional[int] = None,
    ):
        records = []
        for client in self.clients.values():
            records.extend(client.range_search(low, high, as_of))
        records.sort(key=lambda record: record.key)
        return records

    @property
    def now(self) -> int:
        return max(client.now for client in self.clients.values())


@dataclass
class MigrationReport:
    """What :func:`migrate_range` did, and what it cost."""

    low: Optional[Key]
    high: Optional[Key]
    source: str
    target: str
    epoch: int
    snapshot_events: int
    catchup_rounds: int
    catchup_events: int
    final_delta_events: int
    #: Wall-clock seconds the range's writes were frozen (PREPARE → COMMIT):
    #: the migration's only write-visible cost.
    stall_seconds: float = field(default=0.0)


def migrate_range(
    cluster: ClusterClient,
    low: Optional[Key],
    high: Optional[Key],
    source: str,
    target: str,
    max_catchup_rounds: int = 8,
    settle_events: int = 16,
) -> MigrationReport:
    """Move ``[low, high)`` from ``source`` to ``target``, live.

    Writes to the range keep landing on the source until the cutover
    freeze; the freeze lasts exactly one final delta plus the COMMIT
    fan-out, and retrying clients never observe a failed write.
    """
    source_client = cluster.clients[source]
    target_client = cluster.clients[target]

    events, offsets = source_client.migrate_read(low, high)
    for payload in protocol.chunk_events(events):
        target_client.migrate_apply(payload)
    snapshot_events = len(events)

    catchup_rounds = 0
    catchup_events = 0
    for _ in range(max_catchup_rounds):
        events, offsets = source_client.migrate_read(low, high, offsets)
        if events:
            catchup_rounds += 1
            catchup_events += len(events)
            for payload in protocol.chunk_events(events):
                target_client.migrate_apply(payload)
        if len(events) <= settle_events:
            break

    epoch = cluster.table.max_epoch() + 1
    stall_started = time.perf_counter()
    source_client.cutover(CUTOVER_PREPARE, low, high, epoch, target)
    # The range is frozen: this delta is the last word on it.
    events, offsets = source_client.migrate_read(low, high, offsets)
    for payload in protocol.chunk_events(events):
        target_client.migrate_apply(payload)
    for client in cluster.clients.values():
        client.cutover(CUTOVER_COMMIT, low, high, epoch, target)
    stall_seconds = time.perf_counter() - stall_started

    cluster.table.install([(low, high, target, epoch)])
    return MigrationReport(
        low=low,
        high=high,
        source=source,
        target=target,
        epoch=epoch,
        snapshot_events=snapshot_events,
        catchup_rounds=catchup_rounds,
        catchup_events=catchup_events,
        final_delta_events=len(events),
        stall_seconds=stall_seconds,
    )
