"""Incremental redo: replay shipped WAL records into a follower tree.

Restart recovery (:class:`~repro.recovery.recovery_manager.RecoveryManager`)
replays a *finished* log in three passes; a replica replays a log that never
finishes.  :class:`LogReplayer` is the incremental form of the same redo
machinery: it consumes records one at a time, in log order, buffering each
transaction's operations until its ``COMMIT`` arrives and then applying them
through the tree's provisional-write path — ``insert_provisional`` /
``delete_provisional`` followed by ``commit_provisional`` at the logged
commit timestamp.  Because the primary logs every record under its write
latch, log order *is* the primary's serialization order, and replaying
commits in log order reproduces the primary's state deterministically: the
many serial orders concurrent transactions admit collapse to the one the
log wrote down.

Key properties:

* **Prefix consistency.**  After applying any record prefix, the tree holds
  exactly the transactions whose ``COMMIT`` lies in that prefix — aborted
  and in-flight transactions leave no trace (their buffered operations are
  simply dropped or still pending).  No undo pass ever runs.
* **Idempotence.**  Records at or below :attr:`applied_lsn` are skipped, so
  re-delivery after a resubscribe cannot double-apply.
* **Watermark.**  :attr:`watermark` is the largest commit timestamp applied;
  a follower read at or below the watermark sees a committed prefix of the
  primary's history.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.recovery.log_records import LogRecord, LogRecordType, decode_stream
from repro.server.protocol import iter_wal_records
from repro.storage.serialization import Key


def scan_offset(data: bytes, from_lsn: int) -> int:
    """Byte offset in ``data`` of the first record with LSN > ``from_lsn``.

    Walks the raw WAL frames (length + CRC + leading u64 LSN) without fully
    decoding bodies.  Returns ``len(data)``'s clean-prefix end when every
    record is at or below ``from_lsn`` — i.e. the append point for new work.
    """
    offset = 0
    for start, lsn, end in iter_wal_records(data):
        if lsn > from_lsn:
            return start
        offset = end
    return offset


class LogReplayer:
    """Apply a shard's WAL records incrementally to a follower TSB-tree.

    The caller owns ordering and latching: records must arrive in LSN order
    (the wire protocol guarantees it per shard) and :meth:`apply` must run
    under the follower store's write latch when reads are concurrently
    served from the same tree.
    """

    def __init__(self, tree, metrics=None, shard: int = 0) -> None:
        self.tree = tree
        self.shard = shard
        self._metrics = metrics
        #: Buffered per-transaction operations: ``txn_id -> [(is_delete, key, value)]``.
        self._images: Dict[int, List[Tuple[bool, Key, bytes]]] = {}
        #: Highest LSN applied (records at or below it are skipped).
        self.applied_lsn = 0
        #: Largest commit timestamp applied — the follower-read watermark.
        self.watermark = 0
        #: Every key any applied commit touched (feeds shard-key tracking).
        self.keys_applied: Set[Key] = set()
        self.commits_applied = 0
        self.records_applied = 0

    def apply(self, record: LogRecord) -> None:
        """Consume one record; commits become visible atomically."""
        if record.lsn <= self.applied_lsn:
            return  # duplicate delivery (resubscribe overlap): already applied
        kind = record.kind
        if kind is LogRecordType.BEGIN:
            self._images[record.txn_id] = []
        elif kind is LogRecordType.INSERT:
            self._images.setdefault(record.txn_id, []).append(
                (False, record.key, record.value)
            )
        elif kind is LogRecordType.DELETE:
            self._images.setdefault(record.txn_id, []).append(
                (True, record.key, b"")
            )
        elif kind is LogRecordType.COMMIT:
            self._apply_commit(
                record.txn_id, record.commit_timestamp, self._images.pop(record.txn_id, [])
            )
        elif kind is LogRecordType.ABORT:
            self._images.pop(record.txn_id, None)
        # CHECKPOINT records carry recovery anchors, not data: nothing to do.
        self.applied_lsn = record.lsn
        self.records_applied += 1

    def _apply_commit(
        self,
        txn_id: int,
        commit_timestamp: int,
        operations: List[Tuple[bool, Key, bytes]],
    ) -> None:
        if not operations:
            return  # empty transaction: committed but wrote nothing
        keys: List[Key] = []
        seen: Set[Key] = set()
        for is_delete, key, value in operations:
            if is_delete:
                self.tree.delete_provisional(key, txn_id)
            else:
                self.tree.insert_provisional(key, value, txn_id)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        self.tree.commit_provisional(txn_id, keys, commit_timestamp)
        self.watermark = max(self.watermark, commit_timestamp)
        self.keys_applied.update(keys)
        self.commits_applied += 1
        if self._metrics is not None:
            self._metrics.inc(f"repl.shard{self.shard}.commits_applied")
            self._metrics.observe(
                f"repl.shard{self.shard}.commit_keys", len(keys)
            )

    def replay(self, data: bytes) -> int:
        """Apply every intact record in ``data``; return the count applied."""
        before = self.records_applied
        for record in decode_stream(data):
            self.apply(record)
        return self.records_applied - before

    def visible_state(self) -> Dict[Key, bytes]:
        """Latest non-tombstone value per applied key — the oracle surface
        crash-convergence tests compare against ``expected_visible``."""
        state: Dict[Key, bytes] = {}
        for key in self.keys_applied:
            history = self.tree.key_history(key)
            if not history:
                continue
            last = history[-1]
            if not last.is_tombstone:
                state[key] = last.value
        return state


def replay_device(device, tree=None, metrics=None, shard: int = 0) -> LogReplayer:
    """Replay a log device's durable contents into ``tree`` (fresh by default).

    The promotion digest check and the crash harness both use this: the
    durable bytes of a mirror device, replayed through a fresh
    :class:`LogReplayer`, are the ground truth a promoted store must match.
    """
    if tree is None:
        from repro.core.tsb_tree import TSBTree

        tree = TSBTree(cache_pages=1_000_000)
    replayer = LogReplayer(tree, metrics=metrics, shard=shard)
    replayer.replay(device.durable_contents())
    return replayer
