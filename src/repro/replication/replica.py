"""A replica: mirror the primary's WAL, serve follower reads, promote.

A :class:`Replica` connects to a :class:`~repro.replication.primary.ReplicationPrimary`,
fetches the shard topology, and per shard maintains three things in
lockstep:

* a **mirror** :class:`~repro.storage.logdevice.LogDevice` — every shipped
  ``LOG_BATCH`` is appended verbatim and forced, so the mirror's durable
  bytes are a byte-identical prefix of the primary's log (the "durable
  prefix" failover ranks by);
* a follower **TSB-tree** fed by a
  :class:`~repro.replication.apply.LogReplayer` — commits apply in log
  order under the follower store's write latch, so reads see atomic
  transaction boundaries;
* an **ACK cursor**: after a batch is durable on the mirror *and* applied,
  ``ACK(shard, lsn)`` flows back on the same connection.

The assembled follower store (a plain :class:`~repro.api.VersionStore`, or
a :class:`~repro.api.sharded.ShardedVersionStore` mirroring the primary's
boundaries) serves the whole read surface; :meth:`serve` exposes it through
an ordinary :class:`~repro.server.service.ReproServer` with the tenant
installed read-only, so ``ReproClient(read_preference="follower")`` reads
it over the same wire protocol as the primary.

Staleness contract: a follower read is a *consistent prefix* — exactly the
transactions whose commits the replica has applied, in the primary's
commit order.  ``WATERMARK`` reports ``(durable_lsn, watermark_ts)``;
a read as-of ``t <= watermark_ts`` returns the primary's own answer for
``t``, byte for byte.  Reads above the watermark are answered from the
same prefix (they may miss the newest commits) — clients needing
read-your-writes poll :meth:`ReproClient.wait_for_watermark` first.

Failover: :meth:`promote` stops the tailers, replays any mirrored-but-
unapplied records, then rebuilds the store *writable* — a fresh
:class:`~repro.recovery.log_manager.LogManager` continues LSNs on the very
mirror device (``next_lsn = applied + 1``) and a fresh transaction manager
resumes the commit clock at the replayed high-water mark, so post-failover
commits extend the same log and the same timeline.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.api.adapters import TSBEngine
from repro.api.sharded import ShardedEngine, ShardedVersionStore
from repro.api.store import ShardSpec, StoreConfig, VersionStore
from repro.core.tsb_tree import TSBTree
from repro.obs.registry import MetricsRegistry
from repro.recovery.log_manager import LogManager
from repro.server.protocol import (
    Opcode,
    ProtocolError,
    Status,
    check_frame_body,
    check_frame_header,
    decode_response,
    encode_request,
    pack_subscribe,
    pack_ack,
    unpack_log_batch,
    unpack_topology,
)
from repro.server.registry import StoreRegistry
from repro.server.service import ReproServer
from repro.storage.logdevice import LogDevice
from repro.replication.apply import LogReplayer
from repro.replication.primary import ReplicationError
from repro.txn.manager import TransactionManager

#: Follower buffer pools are sized no-steal, like restart recovery's: the
#: follower tree never checkpoints mid-stream, so dirty pages must never
#: be evicted to the magnetic device between (nonexistent) checkpoints.
_FOLLOWER_CACHE_PAGES = 1_000_000

_FRAME_HEADER_SIZE = 8


class _ShardState:
    """One shard's replication state: tree, mirror log, replayer, tailer."""

    def __init__(self, shard: int, page_size: int, metrics) -> None:
        self.shard = shard
        self.tree = TSBTree(page_size=page_size, cache_pages=_FOLLOWER_CACHE_PAGES)
        self.mirror = LogDevice()
        self.replayer = LogReplayer(self.tree, metrics=metrics, shard=shard)
        #: Last LSN durably appended to the mirror (the resubscribe cursor).
        self.mirror_lsn = 0
        self.store: Optional[VersionStore] = None  # inner follower store
        self.thread: Optional[threading.Thread] = None
        self.sock: Optional[socket.socket] = None


class Replica:
    """Subscribe to a primary, apply its log, serve follower reads."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        name: str = "replica",
        reconnect_delay: float = 0.01,
        apply_delay: float = 0.0,
    ) -> None:
        self.primary_host = host
        self.primary_port = port
        self.tenant = tenant
        self.name = name
        self.reconnect_delay = reconnect_delay
        #: Test hook: sleep this long before applying each batch, so the
        #: follower watermark visibly lags the primary.
        self.apply_delay = apply_delay
        self.metrics = MetricsRegistry(name=f"replica-{name}")
        self._states: List[_ShardState] = []
        self._store: Optional[VersionStore] = None
        self._sharded = False
        self._page_size = 0
        self._group_commit_size = 1
        self._boundaries: List = []
        self._running = False
        self._request_ids = iter(range(1, 1 << 62))
        self._server: Optional[ReproServer] = None
        self.promoted: Optional[VersionStore] = None

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.primary_host, self.primary_port), timeout=10
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    @staticmethod
    def _read_response(reader):
        header = reader.read(_FRAME_HEADER_SIZE)
        if len(header) < _FRAME_HEADER_SIZE:
            return None
        length, crc = check_frame_header(header)
        body = reader.read(length)
        if len(body) < length:
            return None
        return decode_response(check_frame_body(body, crc))

    def _rpc(self, opcode: Opcode, payload: bytes = b""):
        """One request/response exchange on a throwaway connection."""
        sock = self._connect()
        try:
            reader = sock.makefile("rb")
            request_id = next(self._request_ids)
            sock.sendall(encode_request(request_id, opcode, self.tenant, payload))
            response = self._read_response(reader)
            if response is None:
                raise ReplicationError(f"primary hung up during {opcode.name}")
            _, status, body = response
            if status is not Status.OK:
                raise ReplicationError(f"{opcode.name} answered {status.name}")
            return body
        finally:
            sock.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Replica":
        """Fetch the topology, build follower stores, start the tailers."""
        body = self._rpc(Opcode.TOPOLOGY)
        sharded, boundaries, page_size, group_commit_size = unpack_topology(body)
        self._sharded = sharded
        self._boundaries = boundaries
        self._page_size = page_size
        self._group_commit_size = group_commit_size
        shard_count = len(boundaries) + 1 if sharded else 1
        self._states = [
            _ShardState(index, page_size, self.metrics)
            for index in range(shard_count)
        ]
        self._store = self._build_follower_store()
        # The follower store has no WAL of its own — its replication state
        # lives on this Replica — so the served WATERMARK answer must come
        # from here, not from the (absent) log manager.
        self._store.watermark = self.watermark  # type: ignore[method-assign]
        self._running = True
        for state in self._states:
            state.thread = threading.Thread(
                target=self._tail_shard,
                args=(state,),
                name=f"replica-{self.name}-tail{state.shard}",
                daemon=True,
            )
            state.thread.start()
        return self

    def _build_follower_store(self) -> VersionStore:
        inner_config = StoreConfig(engine="tsb", page_size=self._page_size)
        if not self._sharded:
            state = self._states[0]
            store = VersionStore(
                TSBEngine(state.tree), inner_config, metrics=self.metrics
            )
            state.store = store
            return store
        inner_stores: List[VersionStore] = []
        for state in self._states:
            store = VersionStore(TSBEngine(state.tree), inner_config)
            state.store = store
            inner_stores.append(store)
        spec = ShardSpec(boundaries=tuple(self._boundaries))
        engine = ShardedEngine(
            inner_stores, list(self._boundaries), spec, inner_config
        )
        config = replace(inner_config, shards=spec)
        return ShardedVersionStore(engine, config)

    @property
    def store(self) -> VersionStore:
        """The follower store (read it directly, or :meth:`serve` it)."""
        if self._store is None:
            raise ReplicationError("replica not started")
        return self._store

    def stop(self) -> None:
        """Graceful stop: close subscriptions, join the tailers."""
        self._running = False
        for state in self._states:
            if state.sock is not None:
                try:
                    state.sock.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        for state in self._states:
            if state.thread is not None:
                state.thread.join(timeout=5)
        if self._server is not None:
            self._server.stop()
            self._server = None

    def kill(self) -> None:
        """Abrupt death (failure injection): drop connections, stop applying.

        The mirror devices survive — their durable bytes are exactly what a
        crashed replica's disk would hold.
        """
        self.stop()

    def __enter__(self) -> "Replica":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------
    def _tail_shard(self, state: _ShardState) -> None:
        while self._running:
            try:
                self._subscribe_once(state)
            except (OSError, ProtocolError, ReplicationError, struct.error):
                pass  # disconnect / corrupt batch: resubscribe from the cursor
            finally:
                if state.sock is not None:
                    try:
                        state.sock.close()
                    except OSError:  # pragma: no cover - defensive
                        pass
                    state.sock = None
            if self._running:
                time.sleep(self.reconnect_delay)

    def _subscribe_once(self, state: _ShardState) -> None:
        sock = self._connect()
        state.sock = sock
        reader = sock.makefile("rb")
        request_id = next(self._request_ids)
        # Resume from the mirror's durable cursor: records at or below it
        # are already safe here, so the primary starts right after.
        sock.sendall(
            encode_request(
                request_id,
                Opcode.SUBSCRIBE,
                self.tenant,
                pack_subscribe(state.shard, state.mirror_lsn),
            )
        )
        while self._running:
            response = self._read_response(reader)
            if response is None:
                return  # primary gone (killed, or stream closed)
            _, status, body = response
            if status is not Status.PARTIAL:
                raise ReplicationError(
                    f"subscription answered {status.name}; expected a "
                    "PARTIAL stream"
                )
            shard, last_lsn, records = unpack_log_batch(body)  # validates
            if shard != state.shard:
                raise ReplicationError(
                    f"shard {state.shard} subscription received a batch "
                    f"for shard {shard}"
                )
            if self.apply_delay:
                time.sleep(self.apply_delay)
            state.mirror.append(records)
            state.mirror.force()
            state.mirror_lsn = last_lsn
            self._apply_batch(state, records)
            sock.sendall(
                encode_request(
                    next(self._request_ids),
                    Opcode.ACK,
                    self.tenant,
                    pack_ack(state.shard, last_lsn),
                )
            )

    def _apply_batch(self, state: _ShardState, records: bytes) -> None:
        store = self._store
        assert store is not None
        started = time.perf_counter()
        with store.write_latched():
            before_keys = len(state.replayer.keys_applied)
            applied = state.replayer.replay(records)
            if self._sharded and isinstance(store, ShardedVersionStore):
                engine = store.sharded_engine
                if len(state.replayer.keys_applied) != before_keys:
                    engine._shard_keys[state.shard] |= state.replayer.keys_applied
                engine._now = max(engine._now, state.replayer.watermark)
        self.metrics.observe("repl.apply_batch_records", applied)
        self.metrics.observe("repl.apply_seconds", time.perf_counter() - started)
        self.metrics.set_gauge(
            f"repl.shard{state.shard}.applied_lsn", state.replayer.applied_lsn
        )
        self.metrics.set_gauge(
            f"repl.shard{state.shard}.watermark", state.replayer.watermark
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def durable_lsns(self) -> List[int]:
        """Per-shard durable mirror LSNs — this replica's prefix lengths."""
        return [state.mirror_lsn for state in self._states]

    def watermark(self) -> Tuple[int, int]:
        """``(durable_lsn, watermark_ts)`` of the follower surface.

        The durable LSN is the minimum across shards (every shard's mirror
        holds at least that prefix).  The watermark timestamp is the newest
        commit timestamp applied anywhere: per shard, commits apply in log
        order (a prefix), and the primary's commit clock is global and
        monotone, so a read at or below the watermark sees each shard's
        consistent prefix — with cross-shard skew bounded by the one batch
        currently in flight.  (The minimum would be wrong here: a shard
        the workload never writes would pin the watermark at zero
        forever.)
        """
        if not self._states:
            return 0, 0
        durable = min(state.mirror_lsn for state in self._states)
        watermark = max(state.replayer.watermark for state in self._states)
        return durable, watermark

    def wait_for_watermark(self, timestamp: int, timeout: float = 10.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.watermark()[1] >= timestamp:
                return True
            time.sleep(0.001)
        return False

    # ------------------------------------------------------------------
    # Serving follower reads
    # ------------------------------------------------------------------
    def serve(self, host: str = "127.0.0.1", port: int = 0, **server_kwargs) -> ReproServer:
        """Expose the follower store over the ordinary wire protocol.

        The tenant is installed read-only: write opcodes answer an error
        while the replay tailer remains the store's only writer.
        """
        registry = StoreRegistry({self.tenant: self.store.config})
        registry.install(self.tenant, self.store, read_only=True)
        self._server = ReproServer(registry, host=host, port=port, **server_kwargs)
        self._server.start()
        return self._server

    # ------------------------------------------------------------------
    # Promotion
    # ------------------------------------------------------------------
    def promote(self) -> VersionStore:
        """Become the primary: stop tailing, finish applying, go writable.

        Returns a store over the *same* trees and mirror devices, now with
        a log manager continuing each shard's LSN sequence and a
        transaction manager whose commit clock resumes past the replayed
        high-water mark.  The promoted store's answers over the whole read
        surface equal a fresh replay of the mirrors' durable bytes — the
        digest check ``repro failover`` enforces.
        """
        if self.promoted is not None:
            return self.promoted
        self.stop()
        for state in self._states:
            # Records mirrored but not yet applied (a kill between force
            # and apply) replay here; the replayer skips what it already
            # has, so this is idempotent.
            state.replayer.replay(state.mirror.durable_contents())
        inner_wal = replace(
            StoreConfig(engine="tsb", page_size=self._page_size),
            wal=True,
            group_commit_size=self._group_commit_size,
        )
        promoted_inner: List[VersionStore] = []
        for state in self._states:
            metrics = (
                self.metrics if not self._sharded else MetricsRegistry(name="tsb")
            )
            log_manager = LogManager(
                state.mirror,
                group_commit_size=self._group_commit_size,
                next_lsn=state.replayer.applied_lsn + 1,
                metrics=metrics,
            )
            assert state.store is not None
            latch = state.store.latch
            txns = TransactionManager(
                state.tree, log=log_manager, latch=latch, metrics=metrics
            )
            log_manager.checkpoint(state.tree, txns)
            promoted_inner.append(
                VersionStore(
                    TSBEngine(state.tree),
                    inner_wal,
                    txns=txns,
                    log_manager=log_manager,
                    log_device=state.mirror,
                    latch=latch,
                    metrics=metrics,
                )
            )
        if not self._sharded:
            self.promoted = promoted_inner[0]
        else:
            spec = ShardSpec(boundaries=tuple(self._boundaries))
            shard_keys = [
                set(state.replayer.keys_applied) for state in self._states
            ]
            engine = ShardedEngine(
                promoted_inner,
                list(self._boundaries),
                spec,
                inner_wal,
                shard_keys=shard_keys,
            )
            self.promoted = ShardedVersionStore(
                engine, replace(inner_wal, shards=spec)
            )
        return self.promoted


def elect(replicas: Sequence[Replica]) -> Replica:
    """Pick the failover winner: the replica with the longest durable prefix.

    Ranked by ``(min over shards, sum over shards)`` of the durable mirror
    LSNs — the replica no other can be ahead of on the shard where it
    matters most, ties broken by total log shipped.
    """
    if not replicas:
        raise ReplicationError("no replicas to elect from")
    return max(
        replicas,
        key=lambda replica: (
            min(replica.durable_lsns(), default=0),
            sum(replica.durable_lsns()),
        ),
    )
