"""Comparison baselines: a single-version B+-tree and a naive multiversion index."""

from repro.baselines.bplus_tree import BPlusTree, BPlusTreeError, BPlusTreeStats
from repro.baselines.naive_multiversion import (
    NaiveMultiversionIndex,
    NaiveRecord,
    NaiveSpaceStats,
)

__all__ = [
    "BPlusTree",
    "BPlusTreeError",
    "BPlusTreeStats",
    "NaiveMultiversionIndex",
    "NaiveRecord",
    "NaiveSpaceStats",
]
