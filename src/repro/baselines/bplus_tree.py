"""A conventional single-version B+-tree on the magnetic disk.

The paper's introduction contrasts the TSB-tree with what an ordinary
database would do: keep only the current version in a B+-tree and lose (or
separately archive) history.  This baseline provides that reference point:

* it stores exactly one value per key, overwritten in place on update;
* it lives entirely on the erasable magnetic device with the same
  byte-accurate page images as the TSB-tree, so current-database space is
  directly comparable;
* it supports the current-state operations (insert/update, point lookup,
  range scan) but, by construction, no temporal queries.

It also serves as the substrate for the
:class:`~repro.baselines.naive_multiversion.NaiveMultiversionIndex`
straw-man, which stores *every* version in one magnetic B+-tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.storage.device import Address
from repro.storage.magnetic import MagneticDisk
from repro.storage.pagecache import PageCache
from repro.storage.serialization import (
    ByteReader,
    ByteWriter,
    Key,
    SerializationError,
    key_size,
    read_key,
    read_value,
    write_key,
    write_value,
)

_LEAF_TAG = 0xB1
_BRANCH_TAG = 0xB2
_HEADER_SIZE = 16


class BPlusTreeError(Exception):
    """Raised on invalid B+-tree operations."""


@dataclass
class _Leaf:
    address: Address
    items: List[Tuple[Key, bytes]] = field(default_factory=list)  # sorted by key

    def serialized_size(self) -> int:
        return _HEADER_SIZE + sum(
            key_size(key) + 4 + len(value) for key, value in self.items
        )

    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.put_u8(_LEAF_TAG)
        writer.put_u32(len(self.items))
        for key, value in self.items:
            write_key(writer, key)
            write_value(writer, value)
        return writer.getvalue()

    @staticmethod
    def decode(address: Address, data: bytes) -> "_Leaf":
        reader = ByteReader(data)
        if reader.get_u8() != _LEAF_TAG:
            raise SerializationError("not a B+-tree leaf image")
        count = reader.get_u32()
        items = []
        for _ in range(count):
            key = read_key(reader)
            value = read_value(reader)
            items.append((key, value))
        return _Leaf(address=address, items=items)


@dataclass
class _Branch:
    address: Address
    #: separator keys; children has exactly one more element than keys.
    keys: List[Key] = field(default_factory=list)
    children: List[Address] = field(default_factory=list)

    def serialized_size(self) -> int:
        return (
            _HEADER_SIZE
            + sum(key_size(key) for key in self.keys)
            + 9 * len(self.children)
        )

    def encode(self) -> bytes:
        writer = ByteWriter()
        writer.put_u8(_BRANCH_TAG)
        writer.put_u32(len(self.keys))
        for key in self.keys:
            write_key(writer, key)
        writer.put_u32(len(self.children))
        for child in self.children:
            writer.put_u64(child.page_id)
        return writer.getvalue()

    @staticmethod
    def decode(address: Address, data: bytes) -> "_Branch":
        reader = ByteReader(data)
        if reader.get_u8() != _BRANCH_TAG:
            raise SerializationError("not a B+-tree branch image")
        key_count = reader.get_u32()
        keys = [read_key(reader) for _ in range(key_count)]
        child_count = reader.get_u32()
        children = [Address.magnetic(reader.get_u64()) for _ in range(child_count)]
        return _Branch(address=address, keys=keys, children=children)

    def child_for(self, key: Key) -> Address:
        index = 0
        while index < len(self.keys) and not key < self.keys[index]:
            index += 1
        return self.children[index]


@dataclass
class BPlusTreeStats:
    """Space accounting for the baseline tree."""

    pages: int = 0
    bytes_used: int = 0
    bytes_stored: int = 0
    keys: int = 0
    height: int = 0
    leaf_nodes: int = 0
    branch_nodes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "pages": self.pages,
            "bytes_used": self.bytes_used,
            "bytes_stored": self.bytes_stored,
            "keys": self.keys,
            "height": self.height,
            "leaf_nodes": self.leaf_nodes,
            "branch_nodes": self.branch_nodes,
        }


class BPlusTree:
    """A page-oriented single-version B+-tree on an erasable magnetic disk."""

    def __init__(
        self,
        page_size: int = 1024,
        magnetic: Optional[MagneticDisk] = None,
        cache_pages: int = 128,
    ) -> None:
        if page_size < 128:
            raise ValueError("page_size must be at least 128 bytes")
        self.page_size = page_size
        self.magnetic = magnetic or MagneticDisk(page_size=page_size)
        self.cache = PageCache(self.magnetic, capacity=cache_pages)
        root_address = self.magnetic.allocate_page()
        self._store(_Leaf(address=root_address))
        self._root_address = root_address
        self._height = 1
        self._key_count = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def insert(self, key: Key, value: bytes) -> None:
        """Insert ``key`` or overwrite its value if it already exists."""
        value = bytes(value)
        probe = key_size(key) + 4 + len(value) + _HEADER_SIZE
        if probe > self.page_size:
            raise BPlusTreeError(
                f"record for key {key!r} needs {probe} bytes (> page {self.page_size})"
            )
        split = self._insert_into(self._root_address, key, value)
        if split is not None:
            separator, right_address = split
            new_root_address = self.magnetic.allocate_page()
            new_root = _Branch(
                address=new_root_address,
                keys=[separator],
                children=[self._root_address, right_address],
            )
            self._store(new_root)
            self._root_address = new_root_address
            self._height += 1

    def search(self, key: Key) -> Optional[bytes]:
        """Return the value stored under ``key`` or ``None``."""
        node = self._load(self._root_address)
        while isinstance(node, _Branch):
            node = self._load(node.child_for(key))
        for stored_key, value in node.items:
            if stored_key == key:
                return value
        return None

    def range_search(self, low: Optional[Key] = None, high: Optional[Key] = None) -> List[Tuple[Key, bytes]]:
        """All (key, value) pairs with ``low <= key < high`` in key order."""
        results: List[Tuple[Key, bytes]] = []
        for key, value in self.items():
            if low is not None and key < low:
                continue
            if high is not None and not key < high:
                continue
            results.append((key, value))
        return results

    def items(self) -> Iterator[Tuple[Key, bytes]]:
        """Iterate every (key, value) pair in key order."""
        yield from self._iter_leaf_items(self._root_address)

    def __contains__(self, key: Key) -> bool:
        return self.search(key) is not None

    def __len__(self) -> int:
        return self._key_count

    @property
    def height(self) -> int:
        return self._height

    def flush(self) -> None:
        self.cache.flush()

    def space_stats(self) -> BPlusTreeStats:
        """Pages, bytes and node counts consumed on the magnetic device."""
        self.flush()
        stats = BPlusTreeStats(
            pages=self.magnetic.allocated_pages,
            bytes_used=self.magnetic.bytes_used,
            bytes_stored=self.magnetic.bytes_stored,
            keys=self._key_count,
            height=self._height,
        )
        stack = [self._root_address]
        while stack:
            node = self._load(stack.pop())
            if isinstance(node, _Leaf):
                stats.leaf_nodes += 1
            else:
                stats.branch_nodes += 1
                stack.extend(node.children)
        return stats

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _load(self, address: Address):
        data = self.cache.read(address)
        if not data:
            raise BPlusTreeError(f"page {address} is empty")
        if data[0] == _LEAF_TAG:
            return _Leaf.decode(address, data)
        if data[0] == _BRANCH_TAG:
            return _Branch.decode(address, data)
        raise SerializationError(f"unknown B+-tree page tag {data[0]:#x}")

    def _store(self, node) -> None:
        self.cache.write(node.address, node.encode())

    def _insert_into(self, address: Address, key: Key, value: bytes):
        """Recursive insert; returns (separator, new sibling address) on split."""
        node = self._load(address)
        if isinstance(node, _Leaf):
            return self._insert_into_leaf(node, key, value)

        child_address = node.child_for(key)
        split = self._insert_into(child_address, key, value)
        if split is None:
            return None
        separator, right_address = split
        position = 0
        while position < len(node.keys) and node.keys[position] < separator:
            position += 1
        node.keys.insert(position, separator)
        node.children.insert(position + 1, right_address)
        if node.serialized_size() <= self.page_size:
            self._store(node)
            return None
        return self._split_branch(node)

    def _insert_into_leaf(self, leaf: _Leaf, key: Key, value: bytes):
        inserted_new = False
        for position, (stored_key, _stored_value) in enumerate(leaf.items):
            if stored_key == key:
                leaf.items[position] = (key, value)
                break
            if key < stored_key:
                leaf.items.insert(position, (key, value))
                inserted_new = True
                break
        else:
            leaf.items.append((key, value))
            inserted_new = True
        if inserted_new:
            self._key_count += 1
        if leaf.serialized_size() <= self.page_size:
            self._store(leaf)
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.items) // 2
        right_items = leaf.items[middle:]
        leaf.items = leaf.items[:middle]
        right_address = self.magnetic.allocate_page()
        right = _Leaf(address=right_address, items=right_items)
        self._store(leaf)
        self._store(right)
        return right_items[0][0], right_address

    def _split_branch(self, branch: _Branch):
        middle = len(branch.keys) // 2
        separator = branch.keys[middle]
        right = _Branch(
            address=self.magnetic.allocate_page(),
            keys=branch.keys[middle + 1 :],
            children=branch.children[middle + 1 :],
        )
        branch.keys = branch.keys[:middle]
        branch.children = branch.children[: middle + 1]
        self._store(branch)
        self._store(right)
        return separator, right.address

    def _iter_leaf_items(self, address: Address) -> Iterator[Tuple[Key, bytes]]:
        node = self._load(address)
        if isinstance(node, _Leaf):
            yield from node.items
            return
        for child in node.children:
            yield from self._iter_leaf_items(child)
