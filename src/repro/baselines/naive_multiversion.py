"""Naive multiversion baseline: every version in one magnetic B+-tree.

Section 1 of the paper motivates the TSB-tree by observing that one usually
wants the current database small and fast while history can live on slower,
cheaper storage.  The obvious alternative — simply keeping every version in
the same B+-tree on the magnetic disk — has no redundancy at all, but the
current database grows without bound and every query pays for wading through
history on the expensive device.

:class:`NaiveMultiversionIndex` implements that alternative so the S1/S2
studies can report its magnetic footprint next to the TSB-tree's.  Versions
are stored under a composite ``(key, timestamp)`` key inside a standard
:class:`~repro.baselines.bplus_tree.BPlusTree`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.baselines.bplus_tree import BPlusTree, BPlusTreeStats
from repro.core.records import records_valid_between
from repro.storage.magnetic import MagneticDisk
from repro.storage.serialization import Key

#: zero-padding width for integer components so string order == numeric order.
_INT_PAD = 20


class NaiveRecord(NamedTuple):
    """A ``(timestamp, value)`` record, the baseline's normalized answer.

    Like the other engines' result types it carries the commit timestamp,
    so as-of answers are verifiable.  Being a named tuple it still compares
    equal to a plain ``(timestamp, value)`` pair.
    """

    timestamp: int
    value: bytes


def _encode_component(component: Key) -> str:
    if isinstance(component, bool) or not isinstance(component, (int, str)):
        raise TypeError(f"unsupported key type {type(component).__name__}")
    if isinstance(component, int):
        if component < 0:
            raise ValueError("negative keys are not supported by the naive baseline")
        return f"i{component:0{_INT_PAD}d}"
    if "\x00" in component:
        raise ValueError("string keys must not contain NUL")
    return f"s{component}"


def _version_key(key: Key, timestamp: int) -> str:
    return f"{_encode_component(key)}\x00{timestamp:0{_INT_PAD}d}"


@dataclass
class NaiveSpaceStats:
    """Space accounting: everything is magnetic, nothing is redundant."""

    magnetic_pages: int = 0
    magnetic_bytes_used: int = 0
    magnetic_bytes_stored: int = 0
    versions: int = 0
    keys: int = 0
    height: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "magnetic_pages": self.magnetic_pages,
            "magnetic_bytes_used": self.magnetic_bytes_used,
            "magnetic_bytes_stored": self.magnetic_bytes_stored,
            "versions": self.versions,
            "keys": self.keys,
            "height": self.height,
        }


class NaiveMultiversionIndex:
    """All versions of all records in a single magnetic-disk B+-tree."""

    def __init__(
        self,
        page_size: int = 1024,
        magnetic: Optional[MagneticDisk] = None,
        cache_pages: int = 128,
    ) -> None:
        self.tree = BPlusTree(
            page_size=page_size, magnetic=magnetic, cache_pages=cache_pages
        )
        self._version_count = 0
        self._latest_timestamp: Dict[Key, int] = {}
        self._max_timestamp = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, key: Key, value: bytes, timestamp: Optional[int] = None) -> int:
        """Insert a new version of ``key`` stamped with ``timestamp``."""
        if timestamp is None:
            timestamp = self._max_timestamp + 1
        if timestamp < self._max_timestamp:
            raise ValueError(
                f"timestamp {timestamp} precedes latest committed {self._max_timestamp}"
            )
        self.tree.insert(_version_key(key, timestamp), bytes(value))
        self._version_count += 1
        self._latest_timestamp[key] = timestamp
        self._max_timestamp = max(self._max_timestamp, timestamp)
        return timestamp

    @property
    def now(self) -> int:
        """The largest committed timestamp the index has seen."""
        return self._max_timestamp

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def search_current(self, key: Key) -> Optional[NaiveRecord]:
        latest = self._latest_timestamp.get(key)
        if latest is None:
            return None
        value = self.tree.search(_version_key(key, latest))
        if value is None:
            return None
        return NaiveRecord(timestamp=latest, value=value)

    def search_as_of(self, key: Key, timestamp: int) -> Optional[NaiveRecord]:
        best: Optional[NaiveRecord] = None
        for record in self.key_history(key):
            if record.timestamp <= timestamp and (
                best is None or record.timestamp > best.timestamp
            ):
                best = record
        return best

    def key_history(self, key: Key) -> List[NaiveRecord]:
        """All (timestamp, value) versions of ``key``, oldest first."""
        prefix = _encode_component(key) + "\x00"
        low = prefix
        high = prefix + "\x7f"
        history = []
        for composite, value in self.tree.range_search(low, high):
            timestamp = int(composite.split("\x00", 1)[1])
            history.append(NaiveRecord(timestamp=timestamp, value=value))
        return history

    def history_between(self, key: Key, start: int, end: int) -> List[NaiveRecord]:
        """Versions of ``key`` valid at some point in ``[start, end)``, oldest
        first — the time-slice query the other engines answer."""
        return records_valid_between(self.key_history(key), start, end)

    def snapshot(self, timestamp: int) -> Dict[Key, NaiveRecord]:
        """State of the database as of ``timestamp``."""
        result: Dict[Key, NaiveRecord] = {}
        for key in self._latest_timestamp:
            record = self.search_as_of(key, timestamp)
            if record is not None:
                result[key] = record
        return result

    def range_search(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        as_of: Optional[int] = None,
    ) -> List[Tuple[Key, NaiveRecord]]:
        """Records of keys in ``[low, high)`` valid at ``as_of`` (default: now),
        as ``(key, record)`` pairs sorted by key.

        A current scan probes each key's latest version directly; only an
        explicit ``as_of`` pays for walking that key's history.
        """
        results: List[Tuple[Key, NaiveRecord]] = []
        for key in sorted(self._latest_timestamp):
            if low is not None and key < low:
                continue
            if high is not None and not key < high:
                continue
            record = (
                self.search_current(key)
                if as_of is None
                else self.search_as_of(key, as_of)
            )
            if record is not None:
                results.append((key, record))
        return results

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def space_stats(self) -> NaiveSpaceStats:
        base: BPlusTreeStats = self.tree.space_stats()
        return NaiveSpaceStats(
            magnetic_pages=base.pages,
            magnetic_bytes_used=base.bytes_used,
            magnetic_bytes_stored=base.bytes_stored,
            versions=self._version_count,
            keys=len(self._latest_timestamp),
            height=base.height,
        )
