"""Observability overhead benchmark: what does instrumentation cost?

The obs layer promises (README, ISSUE) that the metrics/tracing hooks are
cheap enough to leave on: the module switches make every recording helper a
no-op when disabled, and the enabled hot path is one ``bisect`` plus a few
integer adds per recorded sample.  This benchmark measures that promise on
the densest instrumented path — per-item ``insert`` followed by point
``get`` on a TSB store — in three modes:

* ``disabled``  — metrics off, tracing off (the no-op switch);
* ``enabled``   — metrics on, tracing off (the default configuration);
* ``traced``    — metrics on, tracing on (spans recorded into the ring).

Each mode runs the identical deterministic workload on a fresh store and
keeps the *minimum* wall time over ``repeats`` rounds.  The modes are
*interleaved* (disabled/enabled/traced per round, after one untimed warm-up)
rather than measured in blocks, so machine-load drift hits every mode
equally and the min-over-rounds filters it out.  Enabled overhead above the threshold
(default 10%) is a failure: the pytest variant asserts on it and the
standalone entry point exits non-zero, which is what the CI tier-1 step
runs::

    PYTHONPATH=src python benchmarks/bench_observability.py --quick
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    from .harness import emit_results
except ImportError:  # standalone: python benchmarks/bench_observability.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from harness import emit_results

from repro.api import StoreConfig, VersionStore
from repro.obs import trace
from repro.obs.registry import set_enabled as set_metrics_enabled

OPS = 6_000
QUICK_OPS = 1_500
REPEATS = 5
QUICK_REPEATS = 3
THRESHOLD = 0.10
PAGE_SIZE = 1024
VALUE = b"x" * 48


def run_workload(ops: int) -> float:
    """Insert ``ops`` distinct keys then read each back; return elapsed s."""
    store = VersionStore.open(
        StoreConfig(engine="tsb", page_size=PAGE_SIZE, cache_pages=256)
    )
    try:
        started = time.perf_counter()
        for key in range(ops):
            store.insert(key, VALUE)
        for key in range(ops):
            store.get(key)
        return time.perf_counter() - started
    finally:
        store.close()


MODES = ("disabled", "enabled", "traced")


def measure(mode: str, ops: int) -> float:
    """One workload round in the given mode (switches restored afterwards)."""
    metrics_on = mode != "disabled"
    trace_on = mode == "traced"
    previous_metrics = set_metrics_enabled(metrics_on)
    previous_trace = trace.set_enabled(trace_on)
    try:
        return run_workload(ops)
    finally:
        set_metrics_enabled(previous_metrics)
        trace.set_enabled(previous_trace)


def run_modes(ops: int, repeats: int) -> dict:
    measure("disabled", ops)  # untimed warm-up (allocator, caches, imports)
    timings = {mode: float("inf") for mode in MODES}
    for _ in range(repeats):
        for mode in MODES:
            timings[mode] = min(timings[mode], measure(mode, ops))
    return {
        "ops": ops,
        "repeats": repeats,
        "timings": timings,
        "enabled_overhead": timings["enabled"] / timings["disabled"] - 1.0,
        "traced_overhead": timings["traced"] / timings["disabled"] - 1.0,
    }


def report(result: dict, threshold: float) -> bool:
    """Print the comparison, emit BENCH JSON; True when within threshold."""
    rows = [
        {
            "label": mode,
            "seconds": round(result["timings"][mode], 4),
            "ops_per_s": round(2 * result["ops"] / result["timings"][mode], 1),
        }
        for mode in ("disabled", "enabled", "traced")
    ]
    emit_results(
        "observability",
        rows,
        study="instrumentation overhead (insert+get)",
        extra={
            "ops": result["ops"],
            "repeats": result["repeats"],
            "enabled_overhead": round(result["enabled_overhead"], 4),
            "traced_overhead": round(result["traced_overhead"], 4),
            "threshold": threshold,
        },
    )
    for row in rows:
        print(f"{row['label']:>9}: {row['seconds']:.4f}s  ({row['ops_per_s']:.0f} ops/s)")
    print(
        f"enabled overhead: {result['enabled_overhead']:+.2%}  "
        f"traced overhead: {result['traced_overhead']:+.2%}  "
        f"(threshold {threshold:.0%})"
    )
    return result["enabled_overhead"] <= threshold


def test_observability_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: run_modes(QUICK_OPS, QUICK_REPEATS), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert report(result, THRESHOLD), (
        f"metrics-enabled overhead {result['enabled_overhead']:.2%} "
        f"exceeds {THRESHOLD:.0%}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized run")
    parser.add_argument("--ops", type=int, default=None, help="keys per round")
    parser.add_argument("--repeats", type=int, default=None, help="rounds per mode")
    parser.add_argument(
        "--threshold", type=float, default=THRESHOLD,
        help="maximum acceptable metrics-enabled overhead (fraction)",
    )
    args = parser.parse_args(argv)
    ops = args.ops or (QUICK_OPS if args.quick else OPS)
    repeats = args.repeats or (QUICK_REPEATS if args.quick else REPEATS)
    result = run_modes(ops, repeats)
    return 0 if report(result, args.threshold) else 1


if __name__ == "__main__":
    raise SystemExit(main())
