"""Study S2 — space and redundancy versus the update:insert ratio.

The second axis of the section 5 plan: fix the splitting policy and vary the
rate of update versus insertion.  Expected shape: with no updates the
TSB-tree degenerates to a B+-tree (no history, no redundancy); as the update
fraction grows, history volume grows and the current database shrinks.
"""

from repro.analysis.experiment import run_update_ratio_study

from .harness import run_study_once

COLUMNS = [
    "update_fraction",
    "magnetic_bytes",
    "historical_bytes",
    "total_bytes",
    "redundancy_ratio",
    "data_time_splits",
    "data_key_splits",
]


def test_s2_space_by_update_fraction(benchmark):
    result = run_study_once(
        benchmark,
        lambda: run_update_ratio_study(
            update_fractions=(0.0, 0.25, 0.5, 0.75, 0.9), operations=5_000
        ),
        columns=COLUMNS,
        results_name="update_ratio",
    )
    rows = {row.label: row.metrics for row in result.rows}
    assert rows["update=0.00"]["historical_bytes"] == 0
    assert rows["update=0.90"]["historical_bytes"] >= rows["update=0.25"]["historical_bytes"]
    assert rows["update=0.90"]["magnetic_bytes"] <= rows["update=0.00"]["magnetic_bytes"]
