#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a fresh run of every figure and study.

The document records, for every figure and every study S1..S7, what the paper
claims (or predicts) and what this reproduction measures, including the full
reference tables.  Running this script re-executes everything at the same
scales the benchmark harness uses and rewrites EXPERIMENTS.md in place::

    python benchmarks/generate_experiments_md.py
"""

from __future__ import annotations

import pathlib
import sys

from repro.analysis.experiment import (
    run_cost_function_study,
    run_policy_study,
    run_query_io_study,
    run_secondary_study,
    run_tsb_vs_wobt,
    run_txn_study,
    run_update_ratio_study,
)
from repro.analysis.figures import run_all_figures
from repro.analysis.report import render_table
from repro.workload import WorkloadSpec

S1_SPEC = WorkloadSpec(operations=5_000, update_fraction=0.5, seed=1989)
S3_SPEC = WorkloadSpec(operations=3_000, update_fraction=0.5, seed=1989)
S4_SPEC = WorkloadSpec(operations=4_000, update_fraction=0.5, seed=1989)
S5_SPEC = WorkloadSpec(operations=5_000, update_fraction=0.6, seed=1989)

S1_COLUMNS = [
    "magnetic_bytes", "historical_bytes", "total_bytes", "redundant_versions",
    "redundancy_ratio", "historical_utilization", "current_db_fraction",
    "data_time_splits", "data_key_splits",
]
S2_COLUMNS = [
    "magnetic_bytes", "historical_bytes", "total_bytes", "redundancy_ratio",
    "data_time_splits", "data_key_splits",
]
S3_COLUMNS = [
    "magnetic_bytes", "historical_bytes", "total_bytes", "worm_sectors",
    "historical_utilization", "redundant_versions", "redundancy_ratio",
]
S4_COLUMNS = [
    "cost_ratio", "magnetic_bytes", "historical_bytes", "storage_cost",
    "data_time_splits", "data_key_splits", "redundancy_ratio",
]


def block(title: str, claim: str, result_text: str, table: str) -> str:
    return (
        f"### {title}\n\n"
        f"**Paper says:** {claim}\n\n"
        f"**Measured:** {result_text}\n\n"
        f"```\n{table}\n```\n\n"
    )


def main() -> None:
    sections = []

    sections.append(
        "# EXPERIMENTS — paper claims versus measured results\n\n"
        "Reference run of every figure reproduction and every study in DESIGN.md.\n"
        "Regenerate this file with `python benchmarks/generate_experiments_md.py`;\n"
        "the same studies run (with assertions on the expected shapes) under\n"
        "`pytest benchmarks/ --benchmark-only`.\n\n"
        "The paper reports no absolute numbers (its evaluation was announced as\n"
        "future work in section 5), so every comparison below is a *shape*\n"
        "comparison: which structure or policy wins, how metrics move as the\n"
        "workload and price knobs turn, and whether the structural behaviour the\n"
        "figures illustrate actually occurs.  Workload scales are laptop-sized\n"
        "(thousands of operations on simulated devices), not the authors'\n"
        "hardware.\n\n"
    )

    # Figures -----------------------------------------------------------
    figure_lines = []
    for result in run_all_figures():
        status = "reproduced" if result.all_checks_pass else "FAILED"
        checks = "; ".join(result.checks)
        figure_lines.append(f"| {result.figure} | {result.description} | {status} | {len(result.checks)} |")
    sections.append(
        "## Figures 1–9 (worked structural examples)\n\n"
        "Each figure is rebuilt through the public API and its structural outcome\n"
        "asserted (`repro.analysis.figures`, `tests/core/test_figures.py`,\n"
        "`tests/wobt/test_wobt_figures.py`).\n\n"
        "| Figure | What it shows | Status | Checks |\n"
        "|---|---|---|---|\n" + "\n".join(figure_lines) + "\n\n"
    )

    # S1 ----------------------------------------------------------------
    s1 = run_policy_study(spec=S1_SPEC)
    rows = {row.label: row.metrics for row in s1.rows}
    s1_text = (
        f"`always-key` stores everything magnetically ({rows['always-key']['magnetic_bytes']:,} B, "
        f"redundancy 1.0); `always-time[current]` shrinks the current database to "
        f"{rows['always-time[current]']['magnetic_bytes']:,} B but stores "
        f"{rows['always-time[current]']['redundant_versions']:,} redundant versions; choosing the split time "
        f"(`last_update`) cuts redundancy to {rows['always-time[last_update]']['redundant_versions']:,}; "
        f"threshold policies interpolate monotonically between the extremes."
    )
    sections.append(
        "## Study S1 — space and redundancy versus splitting policy\n\n"
        + block(
            f"S1 ({S1_SPEC.describe()})",
            "\"more time splits to lower magnetic-disk space use, and more key splits to lower total space "
            "use and data redundancy\" (section 5); splitting policies trade current-database size against "
            "total space and redundancy (section 3.2).",
            s1_text,
            render_table(s1.rows, columns=S1_COLUMNS),
        )
    )

    # S2 ----------------------------------------------------------------
    s2 = run_update_ratio_study(operations=5_000)
    rows = {row.label: row.metrics for row in s2.rows}
    s2_text = (
        f"with no updates the tree degenerates to a B+-tree (0 historical bytes, redundancy 1.0); "
        f"at 90% updates the historical database holds {rows['update=0.90']['historical_bytes']:,} B while the "
        f"current database shrinks to {rows['update=0.90']['magnetic_bytes']:,} B."
    )
    sections.append(
        "## Study S2 — space and redundancy versus update:insert ratio\n\n"
        + block(
            "S2 (5,000 ops, threshold policy, update fraction swept)",
            "the measurement plan varies \"different rates of update versus insertion\" (section 5); "
            "history only exists where updates occur.",
            s2_text,
            render_table(s2.rows, columns=S2_COLUMNS),
        )
    )

    # S3 ----------------------------------------------------------------
    s3 = run_tsb_vs_wobt(spec=S3_SPEC)
    rows = {row.label: row.metrics for row in s3.rows}
    ratio_sectors = rows["wobt"]["worm_sectors"] / max(1, rows["tsb-threshold"]["worm_sectors"])
    s3_text = (
        f"the WOBT burns {rows['wobt']['worm_sectors']:,} WORM sectors at "
        f"{rows['wobt']['historical_utilization']:.0%} utilisation with redundancy ratio "
        f"{rows['wobt']['redundancy_ratio']:.1f}, versus {rows['tsb-threshold']['worm_sectors']:,} sectors at "
        f"{rows['tsb-threshold']['historical_utilization']:.0%} and redundancy "
        f"{rows['tsb-threshold']['redundancy_ratio']:.2f} for the TSB-tree — a {ratio_sectors:.0f}x sector "
        f"difference in the direction the paper argues."
    )
    sections.append(
        "## Study S3 — TSB-tree versus WOBT (and naive all-magnetic)\n\n"
        + block(
            f"S3 ({S3_SPEC.describe()})",
            "\"Space use in the WOBT on write-once disks can be poor when small amounts of information ... "
            "occupy an entire sector\" and WOBT reorganisation \"involves duplication of all the current data\" "
            "(section 5); the TSB-tree consolidates before migrating, so historical sector use \"is excellent\" "
            "(section 3.7).",
            s3_text,
            render_table(s3.rows, columns=S3_COLUMNS),
        )
    )

    # S4 ----------------------------------------------------------------
    s4 = run_cost_function_study(spec=S4_SPEC)
    rows = {row.label: row.metrics for row in s4.rows}
    s4_text = (
        f"as CM/CO rises from 1 to 20, the cost-driven policy's time splits rise from "
        f"{rows['cost-driven CM/CO=1']['data_time_splits']:.0f} to "
        f"{rows['cost-driven CM/CO=20']['data_time_splits']:.0f} and its magnetic footprint falls from "
        f"{rows['cost-driven CM/CO=1']['magnetic_bytes']:,} B to "
        f"{rows['cost-driven CM/CO=20']['magnetic_bytes']:,} B; at every ratio its storage cost is within a few "
        f"percent of (or better than) the better fixed policy."
    )
    sections.append(
        "## Study S4 — the storage cost function CS = SpaceM·CM + SpaceO·CO\n\n"
        + block(
            f"S4 ({S4_SPEC.describe()}, CM/CO ∈ {{1,2,5,10,20}})",
            "the splitting policy \"can be parameterized so as to be responsive to an adjustable cost "
            "function\" (section 3.2).",
            s4_text,
            render_table(s4.rows, columns=S4_COLUMNS),
        )
    )

    # S5 ----------------------------------------------------------------
    s5 = run_query_io_study(spec=S5_SPEC, query_count=150)
    rows = {row.label: row.metrics for row in s5.rows}
    s5_text = (
        f"current lookups and current range scans perform {rows['current lookups']['historical_reads']:.0f} "
        f"optical reads (everything is answered from the magnetic tier), while as-of lookups, key histories and "
        f"historical snapshots read the optical device ({rows['snapshot (T=25%)']['historical_reads']:.0f} "
        f"optical reads for the snapshot) and pay the corresponding modelled latency."
    )
    sections.append(
        "## Study S5 — device I/O per query class\n\n"
        + block(
            f"S5 ({S5_SPEC.describe()}, jukebox-backed history, 8-page cold buffer pool)",
            "current data is clustered in a small number of nodes on the fast device; the slower optical "
            "seeks and robot mounts are paid only by accesses to historical data, \"which is accessed less "
            "often\" (sections 1 and 2).",
            s5_text,
            render_table(s5.rows),
        )
    )

    # S6 ----------------------------------------------------------------
    s6 = run_txn_study()
    rows = {row.label: row.metrics for row in s6.rows}
    s6_text = (
        "the read-only transaction's snapshot is byte-identical before and after concurrent committed "
        "updates and takes zero locks; zero provisional versions ever reach the historical database; aborted "
        "writes are invisible; all committed updates are visible with their commit timestamps."
    )
    sections.append(
        "## Study S6 — transaction processing (section 4)\n\n"
        + block(
            "S6 (scripted interleaving of updaters, an aborter and a lock-free reader)",
            "uncommitted data carries no timestamp, is never written to the historical database and can "
            "always be erased; a read-only transaction stamped at start \"will never have to wait for an "
            "updater to commit\" (sections 4 and 4.1).",
            s6_text,
            render_table(s6.rows),
        )
    )

    # S7 ----------------------------------------------------------------
    s7 = run_secondary_study()
    mismatches = sum(
        1
        for row in s7.rows
        if "oracle_count" in row.metrics
        and row.metrics["secondary_count"] != row.metrics["oracle_count"]
    )
    s7_text = (
        f"every \"how many records had value V at time T\" query answered from the secondary TSB-tree alone "
        f"matches the scenario oracle ({mismatches} mismatches across all departments and checkpoints)."
    )
    sections.append(
        "## Study S7 — versioned secondary indexes (section 3.6)\n\n"
        + block(
            "S7 (personnel scenario: 40 employees, 800 salary/department changes)",
            "\"one can answer the question of how many records had a given secondary key at a given time "
            "using only the secondary time-split B-tree\".",
            s7_text,
            render_table(s7.rows),
        )
    )

    sections.append(
        "## Reading the numbers\n\n"
        "* Space figures count whole device units (magnetic pages, WORM sectors), matching how the paper\n"
        "  reasons about space; payload-byte figures are available from `collect_space_stats` as\n"
        "  `*_bytes_stored`.\n"
        "* Latency figures are produced by the explicit cost model (16 ms magnetic seek, 3x optical seek,\n"
        "  20 s robot mount), not by wall-clock measurement.\n"
        "* All workloads are deterministic (seeded); rerunning this script reproduces the tables exactly.\n"
    )

    output = "".join(sections)
    target = pathlib.Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    target.write_text(output, encoding="utf-8")
    print(f"wrote {target} ({len(output.splitlines())} lines)")


if __name__ == "__main__":
    sys.exit(main())
