"""Study S4 — the storage cost function ``CS = SpaceM*CM + SpaceO*CO``.

Section 3.2 proposes parameterising the split decision by the relative price
of magnetic and optical storage.  The sweep varies CM/CO and compares the
cost-driven policy against the two fixed policies; expected shape: as CM/CO
grows the cost-driven policy performs more time splits and its total storage
cost tracks (or beats) the better of the two fixed policies.
"""

from repro.analysis.experiment import run_cost_function_study
from repro.workload import WorkloadSpec

from .harness import run_study_once

SPEC = WorkloadSpec(operations=4_000, update_fraction=0.5, seed=1989)
COLUMNS = [
    "cost_ratio",
    "magnetic_bytes",
    "historical_bytes",
    "storage_cost",
    "data_time_splits",
    "data_key_splits",
    "redundancy_ratio",
]


def test_s4_cost_function_sweep(benchmark):
    result = run_study_once(
        benchmark,
        lambda: run_cost_function_study(cost_ratios=(1.0, 2.0, 5.0, 10.0, 20.0), spec=SPEC),
        columns=COLUMNS,
        results_name="cost_function",
    )
    rows = {row.label: row.metrics for row in result.rows}
    lowest = rows["cost-driven CM/CO=1"]
    highest = rows["cost-driven CM/CO=20"]
    assert highest["data_time_splits"] >= lowest["data_time_splits"]
    assert highest["magnetic_bytes"] <= lowest["magnetic_bytes"]
    for ratio in ("1", "5", "20"):
        adaptive = rows[f"cost-driven CM/CO={ratio}"]["storage_cost"]
        fixed_best = min(
            rows[f"always-key CM/CO={ratio}"]["storage_cost"],
            rows[f"always-time CM/CO={ratio}"]["storage_cost"],
        )
        assert adaptive <= fixed_best * 1.15
