"""Sharded write throughput — put_many scaling with shard count.

The scale-out claim behind :class:`~repro.api.ShardedVersionStore`: batched
writes through N key-range shards outrun the single-store baseline, because
each shard's tree is shallower (fewer node touches per insert) and each
shard brings its own buffer pool.  One workload, shard counts 1/2/4/8 —
the 1-shard store IS the baseline (a plain store plus dispatch overhead;
timing both separately just reported the same configuration twice) — plus
an answers-digest check proving the sharded stores return the same logical
answers they were sped up for.

Each configuration is timed ``REPEATS`` times on a fresh store and reports
the **median**, after one untimed warmup run that pays the one-off costs
(imports, code-object warmup, allocator growth) no steady-state deployment
sees.
"""

import statistics
import time

from repro.analysis.experiment import answers_digest
from repro.analysis.metrics import ExperimentRow
from repro.analysis.report import render_comparison
from repro.api import ShardSpec, StoreConfig, VersionStore
from repro.workload import WorkloadSpec, generate

from .harness import emit_results

SPEC = WorkloadSpec(operations=12_000, update_fraction=0.5, seed=1989, value_size=40)
SHARD_COUNTS = (1, 2, 4, 8)
PAGE_SIZE = 512
REPEATS = 3


def open_store(shards: int, key_space: int):
    # Partition the *actual* key domain of the workload: sizing the
    # ranges to the operation count would leave the upper shards empty
    # (sequential key assignment stops near ops * (1 - update_fraction)).
    spec = (
        ShardSpec.for_int_keys(shards, key_space=key_space)
        if shards > 1
        else ShardSpec()
    )
    return VersionStore.open(
        StoreConfig(engine="tsb", page_size=PAGE_SIZE, shards=spec)
    )


def run_sweep():
    operations = generate(SPEC)
    pairs = [(operation.key, operation.value) for operation in operations]
    keys = sorted({operation.key for operation in operations})
    key_space = keys[-1] + 1
    sample = keys[:: max(1, len(keys) // 40)][:40]
    final = operations[-1].timestamp
    probes = [max(1, final // 2), final]

    # Warmup: one untimed full run so every timed round sees hot code.
    warm = open_store(1, key_space)
    warm.put_many(pairs)
    warm.close()

    rows = []
    digests = {}
    for shards in SHARD_COUNTS:
        label = f"{shards} shard{'s' if shards > 1 else ''}"
        elapsed_rounds = []
        store = None
        for _ in range(REPEATS):
            if store is not None:
                store.close()
            store = open_store(shards, key_space)
            started = time.perf_counter()
            store.put_many(pairs)
            elapsed_rounds.append(time.perf_counter() - started)
        elapsed = statistics.median(elapsed_rounds)
        throughput = len(pairs) / elapsed
        digests[label] = answers_digest(store, sample, probes)
        rows.append(
            ExperimentRow(
                label,
                {
                    "shards": shards,
                    "elapsed_s": round(elapsed, 3),
                    "ops_per_s": round(throughput, 1),
                    "rounds": REPEATS,
                    "answers_digest": digests[label],
                },
            )
        )
        store.close()
    return rows, digests


def test_put_many_throughput_scales_with_shard_count(benchmark):
    rows, digests = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\n" + render_comparison("sharded put_many throughput", rows))
    benchmark.extra_info["rows"] = [
        {"label": row.label, **row.metrics} for row in rows
    ]
    emit_results(
        "sharded",
        [{"label": row.label, **row.metrics} for row in rows],
        study="sharded put_many throughput",
    )

    by_label = {row.label: row.metrics for row in rows}
    one_shard = by_label["1 shard"]["ops_per_s"]
    eight_shards = by_label["8 shards"]["ops_per_s"]

    # Sharding is why we are here: eight shards must beat the single-shard
    # baseline, not merely tie it.
    assert eight_shards > 1.05 * one_shard, by_label
    # The trend is monotone-ish: every multi-shard configuration at least
    # matches the single-shard store (5% tolerance for timer noise).
    for count in SHARD_COUNTS[1:]:
        label = f"{count} shards"
        assert by_label[label]["ops_per_s"] > 0.95 * one_shard, by_label
    # Same answers everywhere — throughput means nothing if the logical
    # database diverged.
    assert len(set(digests.values())) == 1, digests
