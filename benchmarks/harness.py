"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the studies listed in DESIGN.md /
EXPERIMENTS.md (S1-S7) or a supporting micro-benchmark.  Studies are run
exactly once per benchmark (``rounds=1``) because they are deterministic,
whole-workload measurements rather than microsecond-scale hot loops; the
interesting output is the result table attached to ``benchmark.extra_info``
and printed to stdout, not the timing statistics.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import render_comparison
from repro.analysis.experiment import StudyResult


def run_study_once(benchmark, study_callable, *, columns: Optional[Sequence[str]] = None):
    """Run a study exactly once under the benchmark timer and report its table."""
    result: StudyResult = benchmark.pedantic(study_callable, rounds=1, iterations=1)
    table = render_comparison(result.study, result.rows, columns=columns)
    print("\n" + table)
    benchmark.extra_info["study"] = result.study
    benchmark.extra_info["rows"] = [
        {"label": row.label, **row.metrics} for row in result.rows
    ]
    return result
