"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the studies listed in DESIGN.md /
EXPERIMENTS.md (S1-S7) or a supporting micro-benchmark.  Studies are run
exactly once per benchmark (``rounds=1``) because they are deterministic,
whole-workload measurements rather than microsecond-scale hot loops; the
interesting output is the result table attached to ``benchmark.extra_info``
and printed to stdout, not the timing statistics.

Every benchmark additionally emits its result rows as machine-readable JSON
to ``BENCH_<name>.json`` (via :func:`emit_results`), so the repository's
perf trajectory is recorded per run instead of scrolling away in stdout.
Results land in the current working directory unless ``BENCH_RESULTS_DIR``
points elsewhere.  Within one pytest session, repeated :func:`emit_results`
calls for the same name accumulate rows and rewrite the file, so
multi-test benchmark modules produce one consolidated file.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_comparison
from repro.analysis.experiment import StudyResult
from repro.obs.registry import session_histograms

#: Per-process accumulator: benchmark name -> payload written so far.
_COLLECTED: Dict[str, dict] = {}


def results_path(name: str, directory: Optional[str] = None) -> Path:
    """Where ``BENCH_<name>.json`` goes (cwd unless BENCH_RESULTS_DIR is set)."""
    base = Path(directory or os.environ.get("BENCH_RESULTS_DIR", "."))
    return base / f"BENCH_{name}.json"


def emit_results(
    name: str,
    rows: Sequence[dict],
    *,
    study: Optional[str] = None,
    extra: Optional[dict] = None,
    directory: Optional[str] = None,
) -> Path:
    """Append ``rows`` to the named benchmark's JSON file and rewrite it.

    ``rows`` are plain dicts (one per configuration/measurement).  ``study``
    labels the section the rows belong to; ``extra`` merges free-form
    metadata (digests, workload sizes) into the payload.
    """
    payload = _COLLECTED.setdefault(
        name, {"benchmark": name, "sections": [], "extra": {}}
    )
    payload["sections"].append(
        {"study": study or name, "rows": [dict(row) for row in rows]}
    )
    if extra:
        payload["extra"].update(extra)
    # Embed whatever latency distributions the run's stores accumulated so
    # far (op timers, WAL fsyncs, latch waits, client-side latencies, ...).
    # Refreshed on every rewrite, so the final file carries the full session.
    latency = session_histograms()
    if latency:
        payload["latency_histograms"] = latency
    path = results_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )
    return path


def rows_from_study(result: StudyResult) -> List[dict]:
    """Flatten a StudyResult's rows to JSON-ready dicts."""
    return [{"label": row.label, **row.metrics} for row in result.rows]


def run_study_once(
    benchmark,
    study_callable,
    *,
    columns: Optional[Sequence[str]] = None,
    results_name: Optional[str] = None,
):
    """Run a study exactly once under the benchmark timer and report its table.

    With ``results_name`` the study's rows are also written to
    ``BENCH_<results_name>.json`` through :func:`emit_results`.
    """
    result: StudyResult = benchmark.pedantic(study_callable, rounds=1, iterations=1)
    table = render_comparison(result.study, result.rows, columns=columns)
    print("\n" + table)
    benchmark.extra_info["study"] = result.study
    benchmark.extra_info["rows"] = rows_from_study(result)
    if results_name:
        emit_results(results_name, rows_from_study(result), study=result.study)
    return result
