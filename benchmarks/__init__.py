"""Benchmark package (see harness.py): ``pytest benchmarks/ --benchmark-only``."""
