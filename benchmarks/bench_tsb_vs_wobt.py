"""Study S3 — TSB-tree versus the WOBT (and the naive all-magnetic index).

Reproduces the quantitative claims of sections 2.6 and 3.7: keeping
everything on write-once sectors wastes most of each sector and duplicates
current data at every reorganisation, while the TSB-tree consolidates nodes
before migrating them and therefore fills historical sectors almost
completely.
"""

from repro.analysis.experiment import run_tsb_vs_wobt
from repro.workload import WorkloadSpec

from .harness import run_study_once

SPEC = WorkloadSpec(operations=3_000, update_fraction=0.5, seed=1989)
COLUMNS = [
    "magnetic_bytes",
    "historical_bytes",
    "total_bytes",
    "worm_sectors",
    "historical_utilization",
    "redundant_versions",
    "redundancy_ratio",
]


def test_s3_tsb_vs_wobt(benchmark):
    result = run_study_once(
        benchmark,
        lambda: run_tsb_vs_wobt(spec=SPEC),
        columns=COLUMNS,
        results_name="tsb_vs_wobt",
    )
    rows = {row.label: row.metrics for row in result.rows}
    # Headline shapes: the WOBT burns many more WORM sectors at much lower
    # utilisation and duplicates far more data than the TSB-tree.
    assert rows["wobt"]["worm_sectors"] > 3 * rows["tsb-threshold"]["worm_sectors"]
    assert rows["wobt"]["historical_utilization"] < rows["tsb-threshold"]["historical_utilization"]
    assert rows["wobt"]["redundancy_ratio"] > rows["tsb-threshold"]["redundancy_ratio"]
    assert rows["naive-magnetic"]["historical_bytes"] == 0
