"""Micro-benchmarks: operation throughput of the structures under test.

Not part of the paper's measurement plan, but useful engineering context for
anyone adopting the library: how expensive are inserts and the various query
classes on each structure, at equal workload and page/sector sizes.  These
use normal pytest-benchmark timing (multiple rounds) because they measure
hot-path latency rather than whole-study outcomes.
"""

import pytest

from repro.baselines import BPlusTree, NaiveMultiversionIndex
from repro.core import ThresholdPolicy, TSBTree
from repro.wobt import WOBT
from repro.workload import WorkloadSpec, generate

from .harness import emit_results

SPEC = WorkloadSpec(operations=1_500, update_fraction=0.6, seed=7)
OPERATIONS = generate(SPEC)


@pytest.fixture(autouse=True)
def _record_timing(request, benchmark):
    """After each micro-benchmark, append its mean latency to BENCH_operations.json."""
    yield
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean = getattr(stats, "mean", None)
    if mean is not None:
        emit_results(
            "operations",
            [{"label": request.node.name, "mean_s": mean, "operations": len(OPERATIONS)}],
        )


def loaded_tsb_tree() -> TSBTree:
    tree = TSBTree(page_size=1024, policy=ThresholdPolicy(0.5))
    for operation in OPERATIONS:
        tree.insert(operation.key, operation.value, timestamp=operation.timestamp)
    return tree


class TestInsertThroughput:
    def test_tsb_tree_insert_workload(self, benchmark):
        def build():
            tree = TSBTree(page_size=1024, policy=ThresholdPolicy(0.5))
            for operation in OPERATIONS:
                tree.insert(operation.key, operation.value, timestamp=operation.timestamp)
            return tree

        tree = benchmark.pedantic(build, rounds=3, iterations=1)
        assert tree.counters.inserts == len(OPERATIONS)

    def test_wobt_insert_workload(self, benchmark):
        def build():
            wobt = WOBT(node_sectors=8)
            for operation in OPERATIONS:
                wobt.insert(operation.key, operation.value, timestamp=operation.timestamp)
            return wobt

        wobt = benchmark.pedantic(build, rounds=3, iterations=1)
        assert wobt.counters.inserts == len(OPERATIONS)

    def test_bplus_insert_workload(self, benchmark):
        def build():
            tree = BPlusTree(page_size=1024)
            for operation in OPERATIONS:
                tree.insert(operation.key, operation.value)
            return tree

        benchmark.pedantic(build, rounds=3, iterations=1)

    def test_naive_multiversion_insert_workload(self, benchmark):
        def build():
            index = NaiveMultiversionIndex(page_size=1024)
            for operation in OPERATIONS:
                index.insert(operation.key, operation.value, timestamp=operation.timestamp)
            return index

        benchmark.pedantic(build, rounds=3, iterations=1)


class TestQueryLatency:
    @pytest.fixture(scope="class")
    def tree(self):
        return loaded_tsb_tree()

    @pytest.fixture(scope="class")
    def keys(self):
        return sorted({operation.key for operation in OPERATIONS})

    def test_current_lookup(self, benchmark, tree, keys):
        def lookups():
            for key in keys[:200]:
                tree.search_current(key)

        benchmark(lookups)

    def test_as_of_lookup(self, benchmark, tree, keys):
        midpoint = OPERATIONS[-1].timestamp // 2

        def lookups():
            for key in keys[:200]:
                tree.search_as_of(key, midpoint)

        benchmark(lookups)

    def test_key_history(self, benchmark, tree, keys):
        def histories():
            for key in keys[:50]:
                tree.key_history(key)

        benchmark(histories)

    def test_snapshot(self, benchmark, tree):
        midpoint = OPERATIONS[-1].timestamp // 2
        benchmark(lambda: tree.snapshot(midpoint))

    def test_current_range_scan(self, benchmark, tree):
        benchmark(lambda: tree.range_search())
