"""Engine matrix — the same workload on every engine through VersionStore.

The unified API's reason to exist: one operation stream, replayed through
the :class:`~repro.api.VersionStore` façade on the TSB-tree, the WOBT and
the naive all-magnetic baseline.  The logical query answers must be
identical (the ``answers_digest`` column fingerprints snapshots, histories
and range scans); the storage behaviour must differ exactly the way the
paper says it does.
"""

from repro.analysis.experiment import run_engine_matrix
from repro.workload import WorkloadSpec

from .harness import run_study_once

SPEC = WorkloadSpec(operations=2_000, update_fraction=0.5, seed=1989)
COLUMNS = [
    "magnetic_bytes",
    "historical_bytes",
    "total_bytes",
    "versions_stored",
    "redundancy_ratio",
    "answers_digest",
]


def test_engine_matrix(benchmark):
    result = run_study_once(
        benchmark,
        lambda: run_engine_matrix(spec=SPEC),
        columns=COLUMNS,
        results_name="engine_matrix",
    )
    rows = {row.label: row.metrics for row in result.rows}
    assert set(rows) == {"tsb", "wobt", "naive"}

    # One workload, one logical database: every engine answers every query
    # class identically, byte for byte.
    digests = {label: metrics["answers_digest"] for label, metrics in rows.items()}
    assert len(set(digests.values())) == 1, f"engines disagree: {digests}"

    # The storage claims that motivate the TSB-tree:
    # the WOBT duplicates current data at every reorganisation...
    assert rows["wobt"]["redundancy_ratio"] > rows["tsb"]["redundancy_ratio"]
    # ...the naive index keeps every version on the expensive magnetic tier...
    assert rows["naive"]["historical_bytes"] == 0
    assert rows["naive"]["magnetic_bytes"] > rows["tsb"]["magnetic_bytes"]
    # ...and the TSB-tree migrates history off the magnetic disk.
    assert rows["tsb"]["historical_bytes"] > 0
