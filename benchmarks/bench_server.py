"""Served-store benchmark: wire throughput across clients × depth × batch.

Boots a :class:`~repro.server.service.ReproServer` on an ephemeral port and
drives it with :func:`~repro.workload.concurrent.run_concurrent` through a
:class:`~repro.client.ReproClient` — the exact oracle-checked workload the
in-process concurrency benchmarks run, but over TCP.  The grid varies

* **clients** — concurrent writer threads sharing one pooled client,
* **depth** — requests each writer keeps in flight on its socket
  (``client.pipeline()``; depth 1 is the classic lock-step exchange, and
  the depth axis is where the demultiplexing client and the server's
  cross-request coalescing earn their keep),
* **batch** — items per ``put_many`` (batch 1 is per-item ``insert``,
  which additionally exercises the server's coalescing write batcher).

Each cell reports write throughput plus client-observed p50/p99 latency;
rows land in ``BENCH_server.json``.  A final sanity pass asserts the
served per-key histories match the applied-write oracle, so a cell that
went fast by dropping writes fails instead of winning.

Like ``bench_perf_floor.py``, the standalone run doubles as a regression
gate: the best pipelined cell (depth >= 16) must clear the committed
served-write floor or the process exits non-zero — the CI smoke runs this
with ``--quick`` so a wire-path regression fails the build, not the
nightly.  The floor is deliberately about half the local steady-state
number so CI jitter does not flake the gate.

Run standalone (the CI gate / nightly-bench step)::

    PYTHONPATH=src python benchmarks/bench_server.py --quick

or under pytest-benchmark::

    pytest benchmarks/bench_server.py --benchmark-only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    from .harness import emit_results
except ImportError:  # standalone: python benchmarks/bench_server.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from harness import emit_results

from repro.api import ShardSpec, StoreConfig
from repro.client import ReproClient
from repro.server import ReproServer
from repro.workload.concurrent import run_concurrent

CLIENT_COUNTS = (1, 4)
PIPELINE_DEPTHS = (1, 4, 16, 64)
BATCH_SIZES = (1, 8)
OPS = 1440
QUICK_OPS = 480
VALUE = b"x" * 48

#: Committed floor (writes/s) for the best pipelined cell (depth >= 16).
FLOOR = 2500.0

#: One sharded WAL tenant: the served path that exercises scatter-gather,
#: group commit and the coalescing batcher all at once.
CATALOG = {
    "bench": StoreConfig(
        engine="tsb",
        wal=True,
        group_commit_size=8,
        shards=ShardSpec.for_int_keys(4, key_space=1 << 20, scatter_threads=4),
    )
}


def _percentile_ms(latency: dict, role: str, quantile: str) -> float:
    snapshot = latency.get(role)
    return round(snapshot[quantile] * 1000.0, 3) if snapshot else 0.0


def run_cell(
    server: ReproServer,
    cell: int,
    clients: int,
    depth: int,
    batch: int,
    ops: int,
) -> dict:
    """One grid cell: ``ops`` writes from ``clients`` threads, verified.

    ``cell`` disambiguates the key range — every cell writes fresh keys, so
    the per-key history oracle sees exactly this cell's versions.  Cells
    take contiguous 60k-key slots *inside* the catalogued key space, so
    batches stay shard-local but the load spreads over all four shards as
    the grid proceeds; offsets past the shard boundaries would pile every
    cell onto the last shard and eventually time a shard split instead of
    the wire path.
    """
    offset = cell * 60_000
    items = [(offset + index, VALUE) for index in range(ops)]
    with ReproClient(
        server.host, server.port, tenant="bench", pool_size=clients
    ) as client:
        result = run_concurrent(
            target=client,
            items=items,
            threads=clients,
            batch_size=batch,
            pipeline_depth=depth,
        )
        if result.errors:
            raise RuntimeError(f"client errors: {result.errors[:3]}")
        # Oracle: the served store's history must equal the applied writes.
        for key, versions in list(result.history().items())[:: max(1, ops // 32)]:
            stored = [(r.timestamp, r.value) for r in client.key_history(key)]
            if stored != versions:
                raise RuntimeError(f"history oracle mismatch for key {key}")
    return {
        "clients": clients,
        "depth": depth,
        "batch": batch,
        "writes": result.writes,
        "writes_per_s": round(result.writes_per_s, 1),
        "p50_ms": _percentile_ms(result.latency, "write", "p50"),
        "p99_ms": _percentile_ms(result.latency, "write", "p99"),
        "elapsed_s": round(result.elapsed_s, 3),
    }


def run_grid(ops: int) -> list:
    rows = []
    cell = 0
    with ReproServer(
        CATALOG, port=0, workers=4, max_inflight=256, max_pending_per_connection=256
    ) as server:
        for clients in CLIENT_COUNTS:
            for depth in PIPELINE_DEPTHS:
                for batch in BATCH_SIZES:
                    rows.append(run_cell(server, cell, clients, depth, batch, ops))
                    cell += 1
    return rows


def best_pipelined(rows: list) -> dict:
    """The fastest cell at depth >= 16 — the row the floor gate judges."""
    candidates = [row for row in rows if row["depth"] >= 16]
    return max(candidates, key=lambda row: row["writes_per_s"])


def _print_rows(rows: list) -> None:
    header = f"{'clients':>7} {'depth':>5} {'batch':>5} {'writes/s':>10} {'p50 ms':>8} {'p99 ms':>8}"
    print(header)
    for row in rows:
        print(
            f"{row['clients']:>7} {row['depth']:>5} {row['batch']:>5} "
            f"{row['writes_per_s']:>10,.1f} {row['p50_ms']:>8.3f} {row['p99_ms']:>8.3f}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help=f"{QUICK_OPS} writes per cell instead of {OPS}"
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=FLOOR,
        help=f"served-write floor for the best depth>=16 cell "
        f"(default: {FLOOR:.0f} writes/s; 0 disables the gate)",
    )
    args = parser.parse_args(argv)
    ops = QUICK_OPS if args.quick else OPS
    rows = run_grid(ops)
    _print_rows(rows)
    best = best_pipelined(rows)
    emit_results(
        "server",
        rows,
        study="served throughput: clients x pipeline depth x batch",
        extra={
            "ops_per_cell": ops,
            "catalog": "tsb, 4 shards, wal group_commit=8",
            "floor_writes_per_s": args.floor,
            "best_pipelined_writes_per_s": best["writes_per_s"],
        },
    )
    print(f"BENCH_server.json written ({len(rows)} cells, {ops} writes each)")
    print(
        f"best pipelined cell: {best['writes_per_s']:,.1f} writes/s "
        f"(clients={best['clients']} depth={best['depth']} batch={best['batch']}; "
        f"floor {args.floor:,.0f})"
    )
    if args.floor and best["writes_per_s"] < args.floor:
        print(
            f"FAIL: best depth>=16 cell {best['writes_per_s']:,.1f} writes/s "
            f"is below the committed floor of {args.floor:,.0f}"
        )
        return 1
    return 0


def test_server_throughput_grid(benchmark):
    """pytest-benchmark entry: the quick grid, once, oracle-checked."""
    rows = benchmark.pedantic(run_grid, args=(QUICK_OPS,), rounds=1, iterations=1)
    _print_rows(rows)
    benchmark.extra_info["rows"] = rows
    emit_results(
        "server",
        rows,
        study="served throughput: clients x pipeline depth x batch",
        extra={"ops_per_cell": QUICK_OPS},
    )
    assert len({row["depth"] for row in rows}) == len(PIPELINE_DEPTHS)
    assert len({row["batch"] for row in rows}) >= 2
    assert all(row["writes_per_s"] > 0 for row in rows)
    assert best_pipelined(rows)["writes_per_s"] >= FLOOR


if __name__ == "__main__":
    sys.exit(main())
