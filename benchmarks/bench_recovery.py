"""Recovery-subsystem benchmarks: group commit and restart time.

Two tables:

* group commit — commit throughput for several batch sizes.  The classic
  result: forcing the log is the per-commit device access, so throughput
  scales with the number of commit records one force covers.
* recovery time — restart cost as a function of durable log length, plus a
  row with a checkpoint taken just before the crash, which collapses the
  replayed suffix to (nearly) nothing.
"""

from repro.recovery.studies import run_group_commit_study, run_recovery_time_study

from .harness import run_study_once

BATCH_SIZES = (1, 4, 16, 64)
LOG_LENGTHS = (100, 300, 900)


def test_group_commit_throughput(benchmark):
    result = run_study_once(
        benchmark,
        lambda: run_group_commit_study(batch_sizes=BATCH_SIZES),
        results_name="recovery",
    )
    rows = {row.label: row.metrics for row in result.rows}
    forces = [rows[f"batch={batch}"]["log_forces"] for batch in BATCH_SIZES]
    throughput = [rows[f"batch={batch}"]["commits_per_sec"] for batch in BATCH_SIZES]
    # Bigger batches -> strictly fewer forces and no throughput regression.
    assert forces == sorted(forces, reverse=True)
    assert forces[0] > forces[-1]
    assert throughput[-1] > throughput[0]
    # With batch size N, one force covers ~N commits.
    assert rows["batch=16"]["commits_per_force"] >= 8


def test_recovery_time_vs_log_length(benchmark):
    result = run_study_once(
        benchmark,
        lambda: run_recovery_time_study(log_lengths=LOG_LENGTHS),
        results_name="recovery",
    )
    rows = {row.label: row.metrics for row in result.rows}
    replayed = [rows[f"ops={n}"]["ops_replayed"] for n in LOG_LENGTHS]
    # Longer post-checkpoint logs mean strictly more replay work...
    assert replayed == sorted(replayed)
    assert replayed[0] < replayed[-1]
    assert all(rows[f"ops={n}"]["ops_replayed"] == n for n in LOG_LENGTHS)
    # ...and a checkpoint right before the crash removes it entirely.
    longest = max(LOG_LENGTHS)
    assert rows[f"ops={longest}+ckpt"]["ops_replayed"] == 0
    assert (
        rows[f"ops={longest}+ckpt"]["live_keys"] == rows[f"ops={longest}"]["live_keys"]
    )
