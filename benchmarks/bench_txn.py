"""Study S6 — transaction-processing properties (paper section 4).

Measures and asserts the three claims: read-only transactions see a stable
snapshot without taking locks while updaters commit; uncommitted data never
reaches the historical database; aborted transactions leave no trace.
"""

from repro.analysis.experiment import run_txn_study

from .harness import run_study_once


def test_s6_transaction_support(benchmark):
    result = run_study_once(benchmark, run_txn_study, results_name="txn")
    rows = {row.label: row.metrics for row in result.rows}
    assert rows["read-only snapshot stability"]["changed_under_reader"] == 0
    assert rows["read-only snapshot stability"]["locks_taken_by_reader"] == 0
    assert rows["uncommitted data containment"]["provisional_versions_in_history"] == 0
    assert rows["uncommitted data containment"]["aborted_keys_visible"] == 0
    assert (
        rows["committed updates visible"]["updated_keys_current"]
        == rows["committed updates visible"]["expected"]
    )
