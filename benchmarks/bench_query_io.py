"""Study S5 — device I/O per query class.

The paper's architectural promise: current data stays clustered in a small
number of magnetic nodes, so current lookups never pay optical (or robot)
latencies; historical queries may.  The study measures device reads, mounts
and modelled latency for each query class against a jukebox-backed tree with
a small, cold buffer pool.
"""

from repro.analysis.experiment import run_query_io_study
from repro.workload import WorkloadSpec

from .harness import run_study_once

SPEC = WorkloadSpec(operations=5_000, update_fraction=0.6, seed=1989)


def test_s5_query_io_by_class(benchmark):
    result = run_study_once(
        benchmark,
        lambda: run_query_io_study(spec=SPEC, query_count=150),
        results_name="query_io",
    )
    rows = {row.label: row.metrics for row in result.rows}
    assert rows["current lookups"]["historical_reads"] == 0
    assert rows["current range scan"]["historical_reads"] == 0
    assert rows["as-of lookups (T=25%)"]["historical_reads"] > 0
    assert rows["key histories"]["historical_reads"] > 0
