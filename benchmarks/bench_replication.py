"""Replication benchmark: shipping lag, follower-read scaling, cutover stall.

Three studies, one JSON artifact (``BENCH_replication.json``):

1. **Lag vs write throughput** — the same write workload against a WAL
   sharded store with 0, 1 and 2 live replicas subscribed.  Reports write
   throughput (the shipping tax: replicas tail the same log devices the
   writers force), the worst LSN lag observed at workload end, and the
   catch-up time until every replica has acknowledged the full durable
   log.
2. **Follower-read scaling** — one primary + one served follower; 1, 2
   and 4 reader threads drive timestamped reads through
   ``ReproClient(read_preference="follower")``.  Follower reads never
   touch the primary, so reads/s should scale with reader count until the
   follower's latch saturates.
3. **Migration cutover stall** — two live cluster nodes, a background
   writer, and one online range migration.  Reports the write-stall
   window (PREPARE -> COMMIT), the events copied, and asserts the
   headline guarantee: **zero failed writes** during the move, and every
   acknowledged write readable at its stamp afterwards.

Run standalone (the nightly-bench step)::

    PYTHONPATH=src python benchmarks/bench_replication.py --quick
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

try:
    from .harness import emit_results
except ImportError:  # standalone: python benchmarks/bench_replication.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from harness import emit_results

from repro.api import ShardSpec, StoreConfig
from repro.client import ReproClient
from repro.replication import (
    ClusterClient,
    ClusterNode,
    Replica,
    ReplicationPrimary,
    migrate_range,
)
from repro.server.registry import StoreRegistry
from repro.server.service import ReproServer

OPS = 3000
QUICK_OPS = 800
READS = 2000
QUICK_READS = 600
VALUE = b"x" * 48

REPLICA_COUNTS = (0, 1, 2)
READER_COUNTS = (1, 2, 4)


def _wal_catalog():
    return {
        "bench": StoreConfig(
            engine="tsb",
            wal=True,
            group_commit_size=8,
            shards=ShardSpec.for_int_keys(4, key_space=1 << 20, scatter_threads=1),
        )
    }


# ----------------------------------------------------------------------
# Study 1: lag vs write throughput at 0/1/2 replicas
# ----------------------------------------------------------------------
def run_lag_cell(replica_count: int, ops: int) -> dict:
    registry = StoreRegistry(_wal_catalog())
    store = registry.get("bench")
    primary = ReplicationPrimary(store, poll_interval=0.001).start()
    replicas = [
        Replica(primary.host, primary.port, tenant="bench", name=f"r{i}").start()
        for i in range(replica_count)
    ]
    try:
        started = time.perf_counter()
        for index in range(ops):
            store.put_many([(index * 7 % (1 << 20), VALUE)])
        write_elapsed = time.perf_counter() - started
        end_lag = primary.replication_lag()
        catchup_started = time.perf_counter()
        caught_up = primary.wait_caught_up(timeout=60) if replicas else True
        catchup_s = time.perf_counter() - catchup_started if replicas else 0.0
        if not caught_up:
            raise RuntimeError(f"{replica_count} replicas failed to catch up")
        # Shipping must be loss-free: every replica mirrors the full log.
        for replica in replicas:
            durable = replica.durable_lsns()
            if durable != primary.durable_lsns():
                raise RuntimeError(
                    f"mirror diverged: {durable} != {primary.durable_lsns()}"
                )
        return {
            "replicas": replica_count,
            "writes": ops,
            "writes_per_s": round(ops / write_elapsed, 1),
            "end_lag_lsn": end_lag,
            "catchup_s": round(catchup_s, 4),
        }
    finally:
        for replica in replicas:
            replica.stop()
        primary.stop()
        registry.close_all()


# ----------------------------------------------------------------------
# Study 2: follower-read scaling at 1/2/4 reader threads
# ----------------------------------------------------------------------
def run_follower_cell(readers: int, reads: int, key_space: int = 512) -> dict:
    registry = StoreRegistry(_wal_catalog())
    store = registry.get("bench")
    server = ReproServer(registry, port=0, workers=4)
    server.start()
    primary = ReplicationPrimary(store, poll_interval=0.001).start()
    replica = Replica(primary.host, primary.port, tenant="bench", name="f0")
    try:
        replica.start()
        follower_server = replica.serve(workers=4)
        stamps = [
            store.put_many([(key, VALUE)])[0] for key in range(key_space)
        ]
        if not replica.wait_for_watermark(max(stamps), timeout=30):
            raise RuntimeError("follower never reached the primary watermark")

        per_reader = reads // readers
        errors: list = []
        counts = [0] * readers

        def reader(slot: int) -> None:
            try:
                with ReproClient(
                    server.host,
                    server.port,
                    tenant="bench",
                    followers=[follower_server.address],
                    read_preference="follower",
                ) as client:
                    for i in range(per_reader):
                        key = (slot * per_reader + i) % key_space
                        record = client.get_as_of(key, stamps[key])
                        if record is None or record.value != VALUE:
                            raise RuntimeError(f"wrong follower answer for {key}")
                        counts[slot] += 1
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(slot,)) for slot in range(readers)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise RuntimeError(f"follower reader errors: {errors[:3]}")
        total = sum(counts)
        return {
            "readers": readers,
            "reads": total,
            "reads_per_s": round(total / elapsed, 1),
            "elapsed_s": round(elapsed, 3),
        }
    finally:
        replica.stop()
        primary.stop()
        server.stop()


# ----------------------------------------------------------------------
# Study 3: migration cutover write-stall
# ----------------------------------------------------------------------
def run_migration_study(seed_keys: int = 300) -> dict:
    config = StoreConfig(
        engine="tsb",
        wal=True,
        group_commit_size=4,
        shards=ShardSpec(boundaries=("m",)),
    )
    from repro.replication.cluster import RoutingTable

    with ClusterNode("A", config) as node_a:
        with ClusterNode(
            "B", config, table=RoutingTable([(None, None, "A", 0)])
        ) as node_b:
            cluster = ClusterClient({"A": node_a.address, "B": node_b.address})
            try:
                cluster.put_many(
                    [(f"k{i:04d}", VALUE) for i in range(seed_keys)]
                )
                stop = threading.Event()
                written: list = []
                failures: list = []

                def writer() -> None:
                    i = 0
                    while not stop.is_set():
                        key = f"k{i % seed_keys:04d}"
                        try:
                            stamp = cluster.put_many([(key, VALUE)])[0]
                        except Exception as exc:  # noqa: BLE001
                            failures.append(exc)
                            return
                        written.append((key, stamp))
                        i += 1

                thread = threading.Thread(target=writer)
                thread.start()
                time.sleep(0.05)
                try:
                    report = migrate_range(
                        cluster, f"k{seed_keys // 2:04d}", None, "A", "B"
                    )
                finally:
                    stop.set()
                    thread.join(timeout=10)
                if failures:
                    raise RuntimeError(f"writes failed during migration: {failures[:3]}")
                for key, stamp in written[-64:]:
                    record = cluster.get_as_of(key, stamp)
                    if record is None or record.value != VALUE:
                        raise RuntimeError(f"acknowledged write lost: {key}@{stamp}")
                return {
                    "moved_range": f"[k{seed_keys // 2:04d}, None)",
                    "snapshot_events": report.snapshot_events,
                    "catchup_rounds": report.catchup_rounds,
                    "catchup_events": report.catchup_events,
                    "final_delta_events": report.final_delta_events,
                    "stall_ms": round(report.stall_seconds * 1000.0, 3),
                    "writes_during_migration": len(written),
                    "failed_writes": len(failures),
                }
            finally:
                cluster.close()


def _print_rows(title: str, rows: list) -> None:
    print(f"\n== {title} ==")
    for row in rows:
        print("  " + "  ".join(f"{k}={v}" for k, v in row.items()))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"{QUICK_OPS} writes / {QUICK_READS} reads per cell "
        f"instead of {OPS} / {READS}",
    )
    args = parser.parse_args(argv)
    ops = QUICK_OPS if args.quick else OPS
    reads = QUICK_READS if args.quick else READS

    lag_rows = [run_lag_cell(count, ops) for count in REPLICA_COUNTS]
    _print_rows("lag vs write throughput", lag_rows)
    emit_results(
        "replication",
        lag_rows,
        study="write throughput and shipping lag at 0/1/2 replicas",
        extra={"ops_per_cell": ops, "catalog": "tsb, 4 shards, wal group_commit=8"},
    )

    follower_rows = [run_follower_cell(count, reads) for count in READER_COUNTS]
    _print_rows("follower-read scaling", follower_rows)
    emit_results(
        "replication",
        follower_rows,
        study="follower-read scaling at 1/2/4 reader threads",
        extra={"reads_per_cell": reads},
    )

    migration_row = run_migration_study()
    _print_rows("migration cutover", [migration_row])
    emit_results(
        "replication",
        [migration_row],
        study="online migration: cutover write-stall and zero failed writes",
    )

    print(f"\nBENCH_replication.json written")
    if migration_row["failed_writes"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
