"""Study S7 — temporal secondary-index queries (paper section 3.6).

"How many records had a given secondary key at a given time" is answered
from the secondary TSB-tree alone; the study checks every count against the
scenario oracle and reports the secondary tree's own space use.
"""

from repro.analysis.experiment import run_secondary_study

from .harness import run_study_once


def test_s7_secondary_index_queries(benchmark):
    result = run_study_once(
        benchmark, run_secondary_study, results_name="secondary"
    )
    for row in result.rows:
        if "oracle_count" in row.metrics:
            assert row.metrics["secondary_count"] == row.metrics["oracle_count"], row.label
