"""Ablation — the section 3.3 choice of time-split value.

The WOBT has no choice: it always splits at the current time.  The TSB-tree
may pick any time later than the node's last time split; the paper argues
that splitting at the time of the last update keeps freshly inserted records
out of the historical node and that the choice trades redundancy against
current-database size.  This ablation replays one update-burst-then-insert
workload under each chooser and reports both the cumulative redundant copies
written and the final space split.
"""

from repro.analysis.metrics import space_row
from repro.analysis.experiment import StudyResult
from repro.core import AlwaysTimeSplitPolicy, TSBTree, collect_space_stats

from .harness import run_study_once

CHOOSERS = ("current", "last_update", "min_redundancy", "median")
COLUMNS = [
    "magnetic_bytes",
    "historical_bytes",
    "total_bytes",
    "redundant_versions",
    "redundant_versions_written",
    "redundancy_ratio",
]


def _bursty_workload(tree: TSBTree) -> None:
    """Update bursts on hot keys followed by runs of fresh inserts (section 3.3)."""
    timestamp = 0
    next_new_key = 100_000
    for _round in range(120):
        for hot_key in range(8):
            timestamp += 1
            tree.insert(hot_key, f"update-{timestamp}".encode(), timestamp=timestamp)
        for _ in range(12):
            timestamp += 1
            tree.insert(next_new_key, b"freshly inserted record", timestamp=timestamp)
            next_new_key += 1


def run_split_time_ablation() -> StudyResult:
    result = StudyResult(study="Ablation: time-split value choice (section 3.3)")
    for chooser in CHOOSERS:
        tree = TSBTree(page_size=1024, policy=AlwaysTimeSplitPolicy(chooser))
        _bursty_workload(tree)
        stats = collect_space_stats(tree)
        result.rows.append(
            space_row(
                f"split at {chooser}",
                stats,
                {"redundant_versions_written": tree.counters.redundant_versions_written},
            )
        )
    return result


def test_ablation_split_time_choice(benchmark):
    result = run_study_once(
        benchmark,
        run_split_time_ablation,
        columns=COLUMNS,
        results_name="split_time_choice",
    )
    rows = {row.label: row.metrics for row in result.rows}
    # Splitting at the last update writes no more redundancy than splitting
    # at the current time on this workload (the paper's section 3.3 argument).
    assert (
        rows["split at last_update"]["redundant_versions_written"]
        <= rows["split at current"]["redundant_versions_written"]
    )
    # The greedy per-split minimiser is not globally optimal, so allow a small
    # tolerance against the current-time baseline.
    assert (
        rows["split at min_redundancy"]["redundant_versions_written"]
        <= rows["split at current"]["redundant_versions_written"] * 1.05
    )
