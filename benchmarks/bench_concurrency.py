"""Concurrency benchmarks: parallel scatter-gather and threaded clients.

Two claims are measured on one 8-shard TSB store whose simulated magnetic
devices charge real wall-clock latency per page access (so overlap is
observable, exactly as it would be on hardware):

* **Parallel scatter-gather.**  The same store answers range scans,
  snapshots and cross-key time slices sequentially (``scatter_threads=1``)
  and in parallel (``scatter_threads=8``); the parallel mode must win on
  range and snapshot queries while producing byte-identical answers
  (CRC digests compared per mode).

* **Threaded clients.**  ``workload.run_concurrent`` drives the store from
  1/2/4/8 client threads in read-only, write-only and mixed modes.  Reads
  scale with threads (they share the store's reader latch and overlap
  device latency); writes serialize on the writer latch — both numbers are
  recorded to ``BENCH_concurrency.json`` so the trajectory is tracked
  honestly rather than asserted optimistically.
"""

import threading
import time

from repro.analysis.experiment import answers_digest
from repro.analysis.metrics import ExperimentRow
from repro.analysis.report import render_comparison
from repro.api import ShardSpec, StoreConfig, VersionStore
from repro.workload import WorkloadSpec, generate, run_concurrent

from .harness import emit_results

SHARDS = 8
PAGE_SIZE = 512
DEVICE_LATENCY_S = 0.0002  # 200 µs per magnetic page access while measuring
THREAD_COUNTS = (1, 2, 4, 8)
QUERY_ROUNDS = 10
LOAD_SPEC = WorkloadSpec(operations=6_000, update_fraction=0.5, seed=1989, value_size=40)


def build_loaded_store(scatter_threads=1):
    operations = generate(LOAD_SPEC)
    keys = sorted({operation.key for operation in operations})
    spec = ShardSpec.for_int_keys(
        SHARDS, key_space=keys[-1] + 1, scatter_threads=scatter_threads
    )
    store = VersionStore.open(
        StoreConfig(engine="tsb", page_size=PAGE_SIZE, shards=spec)
    )
    store.put_many([(operation.key, operation.value) for operation in operations])
    return store, keys


def set_device_latency(store, latency_s):
    """Charge (or stop charging) wall-clock time per magnetic page access."""
    for inner in store.shard_stores:
        inner.backend.magnetic.access_latency_s = latency_s


def timed_queries(store, keys, rounds=QUERY_ROUNDS):
    """Cold-cache elapsed seconds per query class on the current scatter mode."""
    final = store.now
    timings = {}

    def measure(label, run_query):
        store.engine.drop_cache()  # cold, at each shard's configured capacity
        started = time.perf_counter()
        run_query()
        timings[label] = timings.get(label, 0.0) + time.perf_counter() - started

    for _ in range(rounds):
        measure("range_scan", lambda: store.range_search())
        measure("snapshot", lambda: store.snapshot(max(1, final // 2)))
        measure(
            "time_slice",
            lambda: store.time_slice(max(1, final // 2), final, keys[0], keys[len(keys) // 4]),
        )
    return timings


def run_scatter_comparison():
    store, keys = build_loaded_store(scatter_threads=1)
    sample = keys[:: max(1, len(keys) // 40)][:40]
    probes = [max(1, store.now // 2), store.now]
    try:
        set_device_latency(store, DEVICE_LATENCY_S)
        sequential = timed_queries(store, keys)
        set_device_latency(store, 0.0)
        sequential_digest = answers_digest(store, sample, probes)

        store.sharded_engine.configure_scatter(SHARDS)
        set_device_latency(store, DEVICE_LATENCY_S)
        parallel = timed_queries(store, keys)
        set_device_latency(store, 0.0)
        parallel_digest = answers_digest(store, sample, probes)
    finally:
        store.close()

    rows = [
        ExperimentRow(
            label,
            {
                "sequential_s": round(sequential[label], 4),
                "parallel_s": round(parallel[label], 4),
                "speedup": round(sequential[label] / parallel[label], 2),
                "digest_sequential": sequential_digest,
                "digest_parallel": parallel_digest,
            },
        )
        for label in sequential
    ]
    return rows, sequential_digest, parallel_digest


def measure_read_throughput(store, keys, threads, reads_per_thread=150):
    """Point-get throughput from N reader threads against cold-ish caches."""
    store.engine.drop_cache(16)  # small pools: most reads pay device latency
    barrier = threading.Barrier(threads + 1)
    done = []

    def reader(offset):
        barrier.wait()
        for index in range(reads_per_thread):
            store.get(keys[(offset * 7 + index * 13) % len(keys)])
        done.append(offset)

    workers = [threading.Thread(target=reader, args=(n,)) for n in range(threads)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    assert len(done) == threads
    return threads * reads_per_thread / elapsed


def run_client_scaling():
    rows = []
    for threads in THREAD_COUNTS:
        # Fresh store per configuration so earlier runs cannot warm later ones.
        store, keys = build_loaded_store(scatter_threads=1)
        try:
            set_device_latency(store, DEVICE_LATENCY_S)
            reads_per_s = measure_read_throughput(store, keys, threads)

            pairs = [(keys[index % len(keys)], b"w" * 40) for index in range(400)]
            write_result = run_concurrent(store, pairs, threads=threads)
            assert write_result.errors == []

            mixed_pairs = [
                (keys[(index * 3) % len(keys)], b"m" * 40) for index in range(300)
            ]
            mixed = run_concurrent(
                store, mixed_pairs, threads=threads, reader_threads=threads
            )
            assert mixed.errors == []
        finally:
            set_device_latency(store, 0.0)
            store.close()
        write_latency = write_result.latency.get("write", {})
        mixed_read_latency = mixed.latency.get("read", {})
        rows.append(
            ExperimentRow(
                f"{threads} thread{'s' if threads > 1 else ''}",
                {
                    "threads": threads,
                    "reads_per_s": round(reads_per_s, 1),
                    "writes_per_s": round(write_result.writes_per_s, 1),
                    "write_p50_ms": round(write_latency.get("p50", 0.0) * 1000, 3),
                    "write_p99_ms": round(write_latency.get("p99", 0.0) * 1000, 3),
                    "mixed_writes_per_s": round(mixed.writes_per_s, 1),
                    "mixed_reads_per_s": round(mixed.reads_per_s, 1),
                    "read_p50_ms": round(mixed_read_latency.get("p50", 0.0) * 1000, 3),
                    "read_p99_ms": round(mixed_read_latency.get("p99", 0.0) * 1000, 3),
                },
            )
        )
    return rows


def run_all():
    scatter_rows, sequential_digest, parallel_digest = run_scatter_comparison()
    scaling_rows = run_client_scaling()
    return scatter_rows, scaling_rows, sequential_digest, parallel_digest


def test_parallel_scatter_gather_beats_sequential(benchmark):
    scatter_rows, scaling_rows, sequential_digest, parallel_digest = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    print("\n" + render_comparison("scatter-gather: sequential vs parallel (8 shards)", scatter_rows))
    print("\n" + render_comparison("client-thread scaling (read/write/mixed)", scaling_rows))
    benchmark.extra_info["scatter"] = [
        {"label": row.label, **row.metrics} for row in scatter_rows
    ]
    benchmark.extra_info["scaling"] = [
        {"label": row.label, **row.metrics} for row in scaling_rows
    ]
    emit_results(
        "concurrency",
        [{"label": row.label, **row.metrics} for row in scatter_rows],
        study="scatter-gather: sequential vs parallel (8 shards)",
        extra={
            "shards": SHARDS,
            "device_latency_s": DEVICE_LATENCY_S,
            "digest_sequential": sequential_digest,
            "digest_parallel": parallel_digest,
        },
    )
    emit_results(
        "concurrency",
        [{"label": row.label, **row.metrics} for row in scaling_rows],
        study="client-thread scaling (read/write/mixed)",
    )

    by_label = {row.label: row.metrics for row in scatter_rows}
    # The headline claim: fanning an 8-shard scatter-gather out on threads
    # beats walking the shards sequentially, on identical answers.
    assert sequential_digest == parallel_digest
    assert by_label["range_scan"]["speedup"] > 1.3, by_label
    assert by_label["snapshot"]["speedup"] > 1.3, by_label

    # Reads scale with client threads (they overlap device latency under
    # the shared read latch): 8 threads must beat 1 thread clearly.
    by_threads = {row.metrics["threads"]: row.metrics for row in scaling_rows}
    assert by_threads[8]["reads_per_s"] > 2.0 * by_threads[1]["reads_per_s"], by_threads
