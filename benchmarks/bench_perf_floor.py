"""Single-shard write-throughput floor — the hot-path regression gate.

The profile-driven overhaul of the single-shard engine (decoded-node
write-back cache, bisect node search, batched stamp-and-apply under one
latch hold) took ``put_many`` from ~1.6k ops/s to ~8k ops/s on the
standard 12k-operation workload.  This gate keeps that work from silently
rotting: it measures the best-of-``repeats`` batched write throughput on a
fresh store and **exits non-zero below the committed floor**, the same
pattern as ``bench_observability.py``::

    PYTHONPATH=src python benchmarks/bench_perf_floor.py --quick

The floor is deliberately half the local steady-state number (and still
2.5x the pre-overhaul throughput), so slow CI hardware passes while a
return of any seed-era hot-path bug — per-item latch round-trips, the
double descent per insert, linear node scans — fails loudly.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    from .harness import emit_results
except ImportError:  # standalone: python benchmarks/bench_perf_floor.py
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from harness import emit_results

from repro.api import StoreConfig, VersionStore
from repro.workload import WorkloadSpec, generate

#: Committed floor (ops/s) for the non-WAL single-shard batched write path.
FLOOR = 4_000.0
OPS = 12_000
QUICK_OPS = 6_000
REPEATS = 3
PAGE_SIZE = 512


def run_round(items) -> float:
    """One fresh-store put_many round; returns elapsed seconds."""
    store = VersionStore.open(StoreConfig(engine="tsb", page_size=PAGE_SIZE))
    try:
        started = time.perf_counter()
        store.put_many(items)
        return time.perf_counter() - started
    finally:
        store.close()


def measure(ops: int, repeats: int) -> dict:
    spec = WorkloadSpec(
        operations=ops, update_fraction=0.5, seed=1989, value_size=40
    )
    items = [(operation.key, operation.value) for operation in generate(spec)]
    run_round(items)  # untimed warm-up (imports, code objects, allocator)
    best = min(run_round(items) for _ in range(repeats))
    return {
        "ops": ops,
        "repeats": repeats,
        "elapsed_s": best,
        "ops_per_s": len(items) / best,
    }


def report(result: dict, floor: float) -> bool:
    """Print and emit the measurement; True when at or above the floor."""
    emit_results(
        "perf_floor",
        [
            {
                "label": "single-shard put_many",
                "ops_per_s": round(result["ops_per_s"], 1),
                "elapsed_s": round(result["elapsed_s"], 3),
                "floor_ops_per_s": floor,
            }
        ],
        study="single-shard write-throughput floor",
        extra={"ops": result["ops"], "repeats": result["repeats"]},
    )
    print(
        f"single-shard put_many: {result['ops_per_s']:.0f} ops/s "
        f"(floor {floor:.0f} ops/s, {result['ops']} ops, "
        f"best of {result['repeats']})"
    )
    return result["ops_per_s"] >= floor


def test_put_many_stays_above_committed_floor(benchmark):
    result = benchmark.pedantic(
        lambda: measure(QUICK_OPS, REPEATS), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert report(result, FLOOR), (
        f"put_many throughput {result['ops_per_s']:.0f} ops/s fell below "
        f"the committed floor of {FLOOR:.0f} ops/s"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI-sized run")
    parser.add_argument("--ops", type=int, default=None, help="operations per round")
    parser.add_argument("--repeats", type=int, default=REPEATS, help="timed rounds")
    parser.add_argument(
        "--floor", type=float, default=FLOOR,
        help="minimum acceptable put_many throughput (ops/s)",
    )
    args = parser.parse_args(argv)
    ops = args.ops or (QUICK_OPS if args.quick else OPS)
    result = measure(ops, args.repeats)
    return 0 if report(result, args.floor) else 1


if __name__ == "__main__":
    raise SystemExit(main())
