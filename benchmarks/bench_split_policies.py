"""Study S1 — total space, current-database space and redundancy per policy.

This is the first axis of the paper's section 5 measurement plan: replay one
workload under every splitting policy and measure where the bytes end up.
Expected shape (see EXPERIMENTS.md): ``always-key`` minimises total space and
redundancy but keeps everything on the magnetic disk; ``always-time``
minimises the current database at the price of redundancy; threshold and
cost-driven policies interpolate.
"""

from repro.analysis.experiment import run_policy_study
from repro.workload import WorkloadSpec

from .harness import run_study_once

SPEC = WorkloadSpec(operations=5_000, update_fraction=0.5, seed=1989)
COLUMNS = [
    "magnetic_bytes",
    "historical_bytes",
    "total_bytes",
    "redundant_versions",
    "redundancy_ratio",
    "historical_utilization",
    "current_db_fraction",
    "data_time_splits",
    "data_key_splits",
]


def test_s1_space_by_splitting_policy(benchmark):
    result = run_study_once(
        benchmark,
        lambda: run_policy_study(spec=SPEC),
        columns=COLUMNS,
        results_name="split_policies",
    )
    rows = {row.label: row.metrics for row in result.rows}
    # Sanity-check the headline shape so a silently broken run fails loudly.
    assert rows["always-key"]["historical_bytes"] == 0
    assert rows["always-time[current]"]["magnetic_bytes"] <= rows["always-key"]["magnetic_bytes"]
    assert rows["always-key"]["redundancy_ratio"] <= rows["always-time[current]"]["redundancy_ratio"]
