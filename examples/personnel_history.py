#!/usr/bin/env python3
"""Personnel records with a versioned secondary index (paper section 3.6).

Human-resources databases are a textbook rollback-database workload: salary
and department changes are stamped with their commit time, nothing is ever
deleted, and questions such as "how many people were in engineering at the
end of Q2" must be answerable years later.

The example maintains a primary TSB-tree over employee records plus a
secondary TSB-tree over the department attribute, and answers temporal
secondary-key queries without touching the primary data, exactly as the
paper describes.

Run with::

    python examples/personnel_history.py
"""

from __future__ import annotations

from repro import SecondaryIndex, StoreConfig, VersionStore, collect_space_stats
from repro.workload import personnel_records


def main() -> None:
    scenario = personnel_records(employees=30, changes=600)
    primary = VersionStore.open(
        StoreConfig(engine="tsb", page_size=1024, split_policy="threshold:0.5")
    )
    by_department = SecondaryIndex("department", page_size=1024)

    print(f"Replaying {len(scenario.events)} personnel events...")
    for event in scenario.events:
        primary.insert(event.entity, event.payload, timestamp=event.timestamp)
        by_department.record_change(event.entity, event.attribute, timestamp=event.timestamp)

    final = scenario.final_timestamp
    checkpoints = [final // 4, final // 2, final]
    departments = ["engineering", "sales", "finance", "legal", "research"]

    print("\nHeadcount by department over time (answered from the secondary index alone):")
    header = "time".rjust(8) + "".join(dept.rjust(13) for dept in departments)
    print(header)
    for checkpoint in checkpoints:
        counts = [
            by_department.count_with_value(dept, as_of=checkpoint) for dept in departments
        ]
        print(str(checkpoint).rjust(8) + "".join(str(count).rjust(13) for count in counts))

    # Cross-check one checkpoint against the primary data (two-step lookup).
    checkpoint = checkpoints[1]
    print(f"\nEngineering staff as of T={checkpoint} (secondary -> primary lookup):")
    for version in by_department.lookup(primary.backend, "engineering", as_of=checkpoint)[:8]:
        print(f"  {version.key}: {version.value.decode()}")

    # Salary history of one employee from the primary store.
    employee = sorted(scenario.history)[0]
    history = primary.key_history(employee)
    print(f"\n{employee} record history ({len(history)} versions); first and last:")
    for record in (history[0], history[-1]):
        print(f"  T={record.timestamp}: {record.value.decode()}")

    # Attribute history from the secondary index.
    print(f"\n{employee} department history (from the secondary index):")
    for timestamp, department in by_department.value_history(employee):
        print(f"  T={timestamp}: {department if department is not None else '(left)'}")

    primary_stats = collect_space_stats(primary.backend)
    secondary_stats = collect_space_stats(by_department.tree)
    print("\nStorage summary:")
    print(
        f"  primary tree   : {primary_stats.magnetic_bytes_used} magnetic B, "
        f"{primary_stats.historical_bytes_used} historical B, "
        f"redundancy {primary_stats.redundancy_ratio:.3f}"
    )
    print(
        f"  secondary tree : {secondary_stats.magnetic_bytes_used} magnetic B, "
        f"{secondary_stats.historical_bytes_used} historical B, "
        f"redundancy {secondary_stats.redundancy_ratio:.3f}"
    )


if __name__ == "__main__":
    main()
