#!/usr/bin/env python3
"""Engineering-design version histories and splitting-policy trade-offs.

Engineering design is another application area from the paper's introduction:
every revision of every design must be kept, recent designs are revised most,
and the archive grows forever.  The interesting engineering question is the
one the paper's section 3.2 poses — how to split full nodes:

* key splits keep everything on the (expensive) magnetic disk but store each
  revision exactly once;
* time splits push old revisions to the (cheap) write-once archive but store
  revisions alive across the split time twice;
* threshold and cost-driven policies sit in between.

The example replays the same design-revision history under four policies and
prints the resulting space/redundancy trade-off — the measurement study the
paper's section 5 announces, on a realistic workload.

Run with::

    python examples/design_versions.py
"""

from __future__ import annotations

from repro import (
    AlwaysKeySplitPolicy,
    AlwaysTimeSplitPolicy,
    CostDrivenPolicy,
    StoreConfig,
    ThresholdPolicy,
    VersionStore,
    collect_space_stats,
)
from repro.analysis import ExperimentRow, render_table, space_row
from repro.storage import CostModel
from repro.workload import engineering_designs


def main() -> None:
    scenario = engineering_designs(designs=20, revisions=1_200)
    cost_model = CostModel.with_cost_ratio(5.0)
    policies = [
        AlwaysKeySplitPolicy(),
        AlwaysTimeSplitPolicy("last_update"),
        ThresholdPolicy(0.5),
        CostDrivenPolicy(cost_model),
    ]

    print(
        f"Replaying {len(scenario.events)} design revisions over {len(scenario.history)} "
        "designs under four splitting policies...\n"
    )
    rows = []
    stores = {}
    for policy in policies:
        store = VersionStore.open(
            StoreConfig(engine="tsb", page_size=1024, split_policy=policy)
        )
        for event in scenario.events:
            store.insert(event.entity, event.payload, timestamp=event.timestamp)
        stores[policy.name] = store
        tree = store.backend
        stats = collect_space_stats(tree, cost_model)
        rows.append(
            space_row(
                policy.name,
                stats,
                {
                    "time_splits": tree.counters.data_time_splits,
                    "key_splits": tree.counters.data_key_splits,
                },
            )
        )

    print(
        render_table(
            rows,
            columns=[
                "magnetic_bytes",
                "historical_bytes",
                "total_bytes",
                "redundancy_ratio",
                "historical_utilization",
                "storage_cost",
                "time_splits",
                "key_splits",
            ],
            label_header="splitting policy",
        )
    )

    # Show that every policy answers temporal queries identically.
    sample_design = sorted(scenario.history)[0]
    mid_time = scenario.final_timestamp // 2
    answers = {
        name: store.get_as_of(sample_design, mid_time).value
        for name, store in stores.items()
    }
    agreed = len(set(answers.values())) == 1
    print(
        f"\nAll policies agree on {sample_design} as of T={mid_time}: "
        f"{'yes' if agreed else 'NO'} -> {next(iter(answers.values())).decode()}"
    )

    # Revision history of the most-revised design.
    busiest = max(scenario.history, key=lambda name: len(scenario.history[name]))
    history = stores[ThresholdPolicy(0.5).name].key_history(busiest)
    print(f"\n{busiest} accumulated {len(history)} revisions; the last three:")
    for record in history[-3:]:
        print(f"  T={record.timestamp}: {record.value.decode()}")


if __name__ == "__main__":
    main()
