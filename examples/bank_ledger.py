#!/usr/bin/env python3
"""Bank ledger with a non-deletion policy and transactional updates.

This is the paper's flagship application area (section 1): financial
transactions must never be deleted, auditors need the balance of any account
at any past time, and backups must not block ongoing business.

The example drives a :class:`repro.VersionStore` (TSB-tree engine on an
optical jukebox) through the transaction surface of section 4:

* every transfer runs as an updating transaction (provisional versions under
  record locks, stamped at commit);
* an aborted transfer leaves no trace in either database;
* an auditor runs a lock-free read-only transaction and sees a stable
  snapshot while transfers keep committing;
* finally, old balances migrate to the write-once historical device as the
  current database is time split.

Run with::

    python examples/bank_ledger.py
"""

from __future__ import annotations

import random

from repro import StoreConfig, VersionStore, collect_space_stats
from repro.storage import OpticalLibrary
from repro.workload import bank_accounts


def main() -> None:
    random.seed(1989)
    store = VersionStore.open(
        StoreConfig(
            engine="tsb",
            page_size=1024,
            split_policy="always-time:last_update",
            historical="jukebox",
            platter_capacity_sectors=512,
        )
    )

    # --- open accounts ------------------------------------------------------
    scenario = bank_accounts(accounts=40, transactions=0)
    balances = {}
    for event in scenario.events:
        with store.begin() as txn:
            txn.write(event.entity, event.payload)
        balances[event.entity] = int(event.payload.decode().split("=")[1])
    print(f"Opened {len(balances)} accounts.")

    # --- run transfers, some of which abort ---------------------------------
    committed = aborted = 0
    for _ in range(600):
        source, target = random.sample(sorted(balances), 2)
        amount = random.randint(1, 120)
        txn = store.begin()
        txn.write(source, f"balance={balances[source] - amount}".encode())
        txn.write(target, f"balance={balances[target] + amount}".encode())
        if balances[source] - amount < 0:
            txn.abort()          # insufficient funds: erase the provisional versions
            aborted += 1
        else:
            txn.commit()
            balances[source] -= amount
            balances[target] += amount
            committed += 1
    print(f"Transfers: {committed} committed, {aborted} aborted (erased).")

    # --- auditor: lock-free consistent snapshot -----------------------------
    auditor = store.begin_readonly()
    audit_total_before = sum(
        int(version.value.decode().split("=")[1]) for version in auditor.snapshot().values()
    )
    # More transfers commit while the auditor is still reading...
    for _ in range(100):
        source, target = random.sample(sorted(balances), 2)
        amount = random.randint(1, 50)
        if balances[source] - amount < 0:
            continue
        with store.begin() as txn:
            txn.write(source, f"balance={balances[source] - amount}".encode())
            txn.write(target, f"balance={balances[target] + amount}".encode())
        balances[source] -= amount
        balances[target] += amount
    audit_total_after = sum(
        int(version.value.decode().split("=")[1]) for version in auditor.snapshot().values()
    )
    print(
        "Auditor snapshot total is stable while transfers commit: "
        f"{audit_total_before} == {audit_total_after} "
        f"({'yes' if audit_total_before == audit_total_after else 'NO'})"
    )
    live_total = sum(balances.values())
    print(f"Live total after all transfers: {live_total} (money is conserved)")

    # --- audit one account through time --------------------------------------
    sample_account = sorted(balances)[0]
    history = store.key_history(sample_account)
    print(f"\n{sample_account} has {len(history)} recorded balances; the last three:")
    for record in history[-3:]:
        print(f"  T={record.timestamp}: {record.value.decode()}")

    # --- storage: history has migrated to the optical library ----------------
    stats = collect_space_stats(store.backend)
    library: OpticalLibrary = store.backend.historical  # type: ignore[assignment]
    print("\nStorage summary:")
    print(f"  current (magnetic) bytes    : {stats.magnetic_bytes_used}")
    print(f"  historical (optical) bytes  : {stats.historical_bytes_used}")
    print(f"  historical sector utilisation: {stats.historical_utilization:.2%}")
    print(f"  optical platters in library : {library.platter_count}")
    print(f"  redundancy ratio            : {stats.redundancy_ratio:.3f}")
    store.close()  # flushes and checkpoints; the devices now hold everything


if __name__ == "__main__":
    main()
