#!/usr/bin/env python3
"""Re-run every worked figure from the paper and print the outcomes.

Each of the paper's Figures 1-9 illustrates one structural behaviour of the
WOBT or the TSB-tree.  ``repro.analysis.figures`` rebuilds each situation
through the public API and checks the outcome the figure shows; this script
prints the results (the figure tests assert the same checks).

Run with::

    python examples/paper_figures.py
"""

from __future__ import annotations

from repro.analysis import run_all_figures


def main() -> None:
    results = run_all_figures()
    failures = 0
    for result in results:
        print(result.summary())
        for check, passed in result.checks.items():
            marker = "ok " if passed else "FAIL"
            print(f"    [{marker}] {check}")
            if not passed:
                failures += 1
        if result.details:
            for name, value in result.details.items():
                print(f"      {name}: {value}")
        print()
    if failures:
        raise SystemExit(f"{failures} figure checks failed")
    print(f"All {len(results)} figures reproduced.")


if __name__ == "__main__":
    main()
