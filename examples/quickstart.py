#!/usr/bin/env python3
"""Quickstart: a versioned store in five minutes.

Opens a :class:`repro.VersionStore` described by a declarative
:class:`repro.StoreConfig` — engine, split policy, page size — writes a few
versions of a handful of records, and shows every query class the paper's
access method supports: current lookup, as-of lookup, snapshot, range scan
and full key history.  The same code runs against any engine; the end of
the script proves it by replaying the history on all three.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import StoreConfig, VersionStore

LEDGER = [
    ("alice", b"balance=50", 1),
    ("bob", b"balance=200", 2),
    ("alice", b"balance=100", 4),
    ("carol", b"balance=75", 6),
    ("alice", b"balance=30", 8),
    ("bob", b"balance=260", 9),
]


def main() -> None:
    config = StoreConfig(engine="tsb", page_size=1024, split_policy="threshold:0.5")
    with VersionStore.open(config) as store:
        # --- write some stepwise-constant data (Figure 1 of the paper) ----
        # An account balance changes only when a transaction commits; between
        # commits it is constant, and no old balance is ever deleted.
        print("Writing account history...")
        for account, payload, timestamp in LEDGER:
            store.insert(account, payload, timestamp=timestamp)

        # --- current lookups ----------------------------------------------
        print("\nCurrent balances:")
        for account in ("alice", "bob", "carol"):
            record = store.get(account)
            print(f"  {account:>6}: {record.value.decode()} (committed at T={record.timestamp})")

        # --- as-of lookups ------------------------------------------------
        print("\nAlice's balance as of selected times:")
        for probe in (1, 3, 5, 7, 9):
            record = store.get_as_of("alice", probe)
            print(f"  T={probe}: {record.value.decode()}")

        # --- an immutable read view pinned at an earlier time -------------
        print("\nSnapshot of every account as of T=6 (via a pinned ReadView):")
        view = store.read_view(as_of=6)
        for key, record in sorted(view.snapshot().items()):
            print(f"  {key:>6}: {record.value.decode()}")

        # --- range scan over current data ---------------------------------
        print("\nCurrent accounts in ['a', 'c'):")
        for record in store.range_search("a", "c"):
            print(f"  {record.key:>6}: {record.value.decode()}")

        # --- complete history of one key ----------------------------------
        print("\nEvery version of alice ever written:")
        for record in store.key_history("alice"):
            print(f"  T={record.timestamp}: {record.value.decode()}")

        # --- where did the bytes go? --------------------------------------
        space = store.space_summary()
        print("\nStorage summary:")
        print(f"  magnetic (current) bytes  : {space['magnetic_bytes']}")
        print(f"  optical (historical) bytes: {space['historical_bytes']}")
        print(f"  stored versions           : {space['versions_stored']}")
        print(f"  redundancy ratio          : {space['redundancy_ratio']:.3f}")

    # --- one API, three engines ------------------------------------------
    # The same operations and queries run unchanged on Easton's write-once
    # B-tree and on the naive all-magnetic baseline; only the storage
    # behaviour differs, never the logical answers.
    print("\nThe same history on every engine:")
    for engine in ("tsb", "wobt", "naive"):
        with VersionStore.open(config.with_engine(engine)) as other:
            for account, payload, timestamp in LEDGER:
                other.insert(account, payload, timestamp=timestamp)
            alice = other.get_as_of("alice", 5)
            space = other.space_summary()
            print(
                f"  {engine:>5}: alice@T=5 = {alice.value.decode()}, "
                f"{space['total_bytes']} total bytes "
                f"({space['magnetic_bytes']} magnetic / {space['historical_bytes']} historical)"
            )


if __name__ == "__main__":
    main()
