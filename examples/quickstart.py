#!/usr/bin/env python3
"""Quickstart: a Time-Split B-tree in five minutes.

Creates a TSB-tree on simulated two-tier storage (erasable magnetic disk for
the current database, write-once optical disk for history), writes a few
versions of a handful of records, and shows every query class the paper's
access method supports: current lookup, as-of lookup, snapshot, range scan
and full key history.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import TSBTree, ThresholdPolicy, collect_space_stats


def main() -> None:
    tree = TSBTree(page_size=1024, policy=ThresholdPolicy(0.5))

    # --- write some stepwise-constant data (Figure 1 of the paper) --------
    # An account balance changes only when a transaction commits; between
    # commits it is constant, and no old balance is ever deleted.
    print("Writing account history...")
    tree.insert("alice", b"balance=50", timestamp=1)
    tree.insert("bob", b"balance=200", timestamp=2)
    tree.insert("alice", b"balance=100", timestamp=4)
    tree.insert("carol", b"balance=75", timestamp=6)
    tree.insert("alice", b"balance=30", timestamp=8)
    tree.insert("bob", b"balance=260", timestamp=9)

    # --- current lookups ---------------------------------------------------
    print("\nCurrent balances:")
    for account in ("alice", "bob", "carol"):
        version = tree.search_current(account)
        print(f"  {account:>6}: {version.value.decode()} (committed at T={version.timestamp})")

    # --- as-of lookups -----------------------------------------------------
    print("\nAlice's balance as of selected times:")
    for probe in (1, 3, 5, 7, 9):
        version = tree.search_as_of("alice", probe)
        print(f"  T={probe}: {version.value.decode()}")

    # --- a snapshot of the whole database at an earlier time ---------------
    print("\nSnapshot of every account as of T=6:")
    for key, version in sorted(tree.snapshot(6).items()):
        print(f"  {key:>6}: {version.value.decode()}")

    # --- range scan over current data ---------------------------------------
    print("\nCurrent accounts in ['a', 'c'):")
    for version in tree.range_search("a", "c"):
        print(f"  {version.key:>6}: {version.value.decode()}")

    # --- complete history of one key ----------------------------------------
    print("\nEvery version of alice ever written:")
    for version in tree.key_history("alice"):
        print(f"  T={version.timestamp}: {version.value.decode()}")

    # --- where did the bytes go? --------------------------------------------
    stats = collect_space_stats(tree)
    print("\nStorage summary:")
    print(f"  magnetic (current) bytes : {stats.magnetic_bytes_used}")
    print(f"  optical (historical) bytes: {stats.historical_bytes_used}")
    print(f"  stored versions           : {stats.total_versions_stored}")
    print(f"  redundancy ratio          : {stats.redundancy_ratio:.3f}")
    print(f"  tree height               : {stats.tree_height}")


if __name__ == "__main__":
    main()
