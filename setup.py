"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on machines whose pip/setuptools are too
old for PEP 660 editable wheels (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
